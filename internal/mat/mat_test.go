package mat

import (
	"math"
	"testing"
	"testing/quick"

	"parcost/internal/rng"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func randMatrix(r *rng.Source, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Normal()
	}
	return m
}

// randSPD builds A = BᵀB + n*I which is safely positive definite.
func randSPD(r *rng.Source, n int) *Dense {
	b := randMatrix(r, n+3, n)
	a := AtA(b)
	a.AddScaledIdentity(float64(n))
	return a
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if r, c := m.Dims(); r != 2 || c != 3 {
		t.Fatalf("dims %dx%d", r, c)
	}
	if m.At(1, 2) != 6 || m.At(0, 0) != 1 {
		t.Fatal("At returned wrong values")
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Fatal("Set failed")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if r, c := tr.Dims(); r != 3 || c != 2 {
		t.Fatalf("transpose dims %dx%d", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul wrong at (%d,%d): %v", i, j, c.At(i, j))
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	r := rng.New(1)
	a := randMatrix(r, 7, 7)
	id := NewDense(7, 7)
	id.AddScaledIdentity(1)
	c := Mul(a, id)
	for i := range a.Data {
		if !almostEq(a.Data[i], c.Data[i], 1e-14) {
			t.Fatal("A*I != A")
		}
	}
}

func TestMulParallelMatchesSerial(t *testing.T) {
	// Size chosen to exceed parallelThreshold so the goroutine path runs.
	r := rng.New(2)
	a := randMatrix(r, 120, 130)
	b := randMatrix(r, 130, 110)
	got := Mul(a, b)
	want := NewDense(120, 110)
	mulRange(a, b, want, 0, 120)
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("parallel Mul diverges at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y := MulVec(a, []float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVec[%d] = %v", i, y[i])
		}
	}
}

func TestMulTVec(t *testing.T) {
	r := rng.New(3)
	a := randMatrix(r, 15, 7)
	x := make([]float64, 15)
	for i := range x {
		x[i] = r.Normal()
	}
	got := MulTVec(a, x)
	want := MulVec(a.T(), x)
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("MulTVec mismatch at %d", i)
		}
	}
}

func TestAtA(t *testing.T) {
	r := rng.New(4)
	a := randMatrix(r, 20, 6)
	got := AtA(a)
	want := Mul(a.T(), a)
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("AtA mismatch at %d", i)
		}
	}
	// Symmetry.
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if got.At(i, j) != got.At(j, i) {
				t.Fatal("AtA not symmetric")
			}
		}
	}
}

func TestDotAxpyNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy wrong: %v", y)
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2 wrong")
	}
}

func TestCholeskySolve(t *testing.T) {
	r := rng.New(5)
	for _, n := range []int{1, 2, 5, 20, 50} {
		a := randSPD(r, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = r.Normal()
		}
		b := MulVec(a, xTrue)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := ch.SolveVec(b)
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-8) {
				t.Fatalf("n=%d: solve mismatch at %d: %v vs %v", n, i, x[i], xTrue[i])
			}
		}
	}
}

func TestCholeskyReconstruct(t *testing.T) {
	r := rng.New(6)
	n := 12
	a := randSPD(r, n)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild L from the packed factor and verify L Lᵀ = A.
	l := ch.L()
	if len(ch.l) != n*(n+1)/2 {
		t.Fatalf("packed factor has %d entries, want %d", len(ch.l), n*(n+1)/2)
	}
	rec := Mul(l, l.T())
	for i := range a.Data {
		if !almostEq(rec.Data[i], a.Data[i], 1e-9) {
			t.Fatalf("L Lᵀ != A at %d: %v vs %v", i, rec.Data[i], a.Data[i])
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, -1}})
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := NewCholesky(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestCholeskyLogDet(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(ch.LogDet(), math.Log(36), 1e-12) {
		t.Fatalf("LogDet = %v, want log(36)", ch.LogDet())
	}
}

func TestCholeskySolveMat(t *testing.T) {
	r := rng.New(7)
	n := 8
	a := randSPD(r, n)
	xTrue := randMatrix(r, n, 3)
	b := Mul(a, xTrue)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := ch.SolveMat(b)
	for i := range x.Data {
		if !almostEq(x.Data[i], xTrue.Data[i], 1e-8) {
			t.Fatalf("SolveMat mismatch at %d", i)
		}
	}
}

func TestLSolveVec(t *testing.T) {
	r := rng.New(8)
	n := 10
	a := randSPD(r, n)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = r.Normal()
	}
	y := ch.LSolveVec(b)
	// Verify L y = b.
	ly := MulVec(ch.L(), y)
	for i := range b {
		if !almostEq(ly[i], b[i], 1e-9) {
			t.Fatalf("LSolveVec residual at %d", i)
		}
	}
}

func TestRobustCholeskyJitter(t *testing.T) {
	// Rank-deficient PSD matrix: ones(3,3). Plain Cholesky fails; robust
	// version must succeed via jitter.
	a := FromRows([][]float64{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}})
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("plain Cholesky unexpectedly succeeded on singular matrix")
	}
	ch, err := RobustCholesky(a)
	if err != nil {
		t.Fatalf("RobustCholesky failed: %v", err)
	}
	if ch.Size() != 3 {
		t.Fatal("wrong size")
	}
}

func TestSolveSPD(t *testing.T) {
	r := rng.New(9)
	a := randSPD(r, 6)
	xTrue := []float64{1, -2, 3, -4, 5, -6}
	b := MulVec(a, xTrue)
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEq(x[i], xTrue[i], 1e-8) {
			t.Fatalf("SolveSPD mismatch at %d", i)
		}
	}
}

// Property: (AB)ᵀ = BᵀAᵀ for random shapes.
func TestQuickMulTransposeIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := 2 + r.Intn(8)
		k := 2 + r.Intn(8)
		n := 2 + r.Intn(8)
		a := randMatrix(r, m, k)
		b := randMatrix(r, k, n)
		left := Mul(a, b).T()
		right := Mul(b.T(), a.T())
		for i := range left.Data {
			if !almostEq(left.Data[i], right.Data[i], 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cholesky solve residual is tiny for random SPD systems.
func TestQuickCholeskyResidual(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(20)
		a := randSPD(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.Normal()
		}
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		x := ch.SolveVec(b)
		res := MulVec(a, x)
		for i := range res {
			if !almostEq(res[i], b[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMul200(b *testing.B) {
	r := rng.New(1)
	x := randMatrix(r, 200, 200)
	y := randMatrix(r, 200, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkCholesky200(b *testing.B) {
	r := rng.New(1)
	a := randSPD(r, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}
