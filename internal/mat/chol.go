package mat

// Cholesky factorization of symmetric positive definite matrices.
//
// The factor is held in PACKED row-major lower-triangle storage — n(n+1)/2
// entries instead of n² — halving the resident memory of every fitted kernel
// model and loaded GP artifact that keeps its factor alive. Factorization
// itself runs on a full n×n scratch buffer in one of two modes:
//
//   - scalar: the reference right-looking column-by-column loop;
//   - blocked: panel factorization plus a goroutine-parallel GEMM-style
//     trailing update (the same ikj kernel shape and row fan-out as Mul).
//
// The blocked mode subtracts every inner-product term in the same ascending
// order as the scalar loop, one rounded multiply-subtract at a time, so the
// two modes produce BIT-IDENTICAL factors at any GOMAXPROCS — the blocked
// path is a faster schedule of the same arithmetic, not a different
// algorithm. NewCholesky picks blocked for matrices large enough to pay for
// the panel machinery and scalar below that.

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Cholesky holds the lower-triangular factor L of an SPD matrix A = L Lᵀ in
// packed row-major lower-triangle storage: element (i, j), j ≤ i, lives at
// index i(i+1)/2 + j.
type Cholesky struct {
	n int
	l []float64 // packed row-major lower triangle, n(n+1)/2 entries
}

// cholBlockedMin is the matrix size at which NewCholesky switches from the
// scalar loop to the blocked factorization; below it the panel bookkeeping
// costs more than it saves.
const cholBlockedMin = 128

// useBlocked reports whether the auto dispatch should take the blocked path:
// the panel machinery pays off through its parallel trailing update, so a
// single-CPU process stays on the scalar loop (the factors are bit-identical
// either way — this is purely a scheduling choice).
func useBlocked(n int) bool {
	return n >= cholBlockedMin && runtime.GOMAXPROCS(0) > 1
}

// cholPanel is the blocked factorization's base panel width.
const cholPanel = 48

// cholPanelWidth returns the blocked factorization's panel width for an n×n
// factor at the given worker count, from BenchmarkCholPanelWidth sweeps:
// narrow panels keep the parallel trailing update fed when the trailing
// block is small, wide panels amortize the panel factorization and cut the
// number of parallel barriers once the trailing block dominates, and wide
// machines shift the break-even toward wider panels. Factors are
// bit-identical at ANY width — the trailing update subtracts inner-product
// terms in ascending column order one multiply-subtract at a time, so panel
// boundaries are invisible to the arithmetic — making this table purely a
// throughput choice, free to key on the worker count.
func cholPanelWidth(n, workers int) int {
	var p int
	switch {
	case n < 2*cholBlockedMin:
		p = 32
	case n < 768:
		p = cholPanel
	case n < 1536:
		p = 64
	default:
		p = 96
	}
	if workers >= 8 && n >= 768 && p < 96 {
		p = 96
	}
	if p > n {
		p = n
	}
	return p
}

// NewCholesky factorizes the SPD matrix a, choosing the blocked parallel
// path for large matrices and the scalar reference path otherwise (both
// produce bit-identical factors). It returns an error if a is not square or
// not positive definite (within floating-point tolerance). The input is not
// modified.
func NewCholesky(a *Dense) (*Cholesky, error) {
	return newCholesky(a, useBlocked(a.RowsN), nil)
}

// NewCholeskyScalar factorizes with the scalar reference loop regardless of
// size. Parity tests compare the blocked path against it.
func NewCholeskyScalar(a *Dense) (*Cholesky, error) {
	return newCholesky(a, false, nil)
}

// NewCholeskyBlocked factorizes with the blocked parallel path regardless of
// size, at the tuned panel width.
func NewCholeskyBlocked(a *Dense) (*Cholesky, error) {
	return newCholesky(a, true, nil)
}

// NewCholeskyBlockedWidth factorizes with the blocked path at a forced panel
// width (values below 1 are treated as 1). The factor is bit-identical at
// every width; the width-parity test and the panel-width benchmark sweep
// widths through this entry point.
func NewCholeskyBlockedWidth(a *Dense, panel int) (*Cholesky, error) {
	if panel < 1 {
		panel = 1
	}
	return newCholeskyPanel(a, true, nil, panel)
}

// newCholesky copies a into an n×n scratch (reusing scratch when it is
// non-nil and correctly sized), factors it in place, and packs the lower
// triangle into the resident factor. Blocked factorizations use the tuned
// panel-width table.
func newCholesky(a *Dense, blocked bool, scratch []float64) (*Cholesky, error) {
	return newCholeskyPanel(a, blocked, scratch, 0)
}

// newCholeskyPanel is newCholesky with an explicit blocked panel width
// (0 = pick from the tuned table).
func newCholeskyPanel(a *Dense, blocked bool, scratch []float64, panel int) (*Cholesky, error) {
	if a.RowsN != a.ColsN {
		return nil, fmt.Errorf("mat: Cholesky of non-square %dx%d matrix", a.RowsN, a.ColsN)
	}
	n := a.RowsN
	w := scratch
	if len(w) != n*n {
		w = make([]float64, n*n)
	}
	copy(w, a.Data)
	var err error
	if blocked {
		if panel <= 0 {
			panel = cholPanelWidth(n, Workers())
		}
		err = cholFactorBlocked(w, n, panel)
	} else {
		err = cholFactorPanel(w, n, 0, n)
	}
	if err != nil {
		return nil, err
	}
	l := make([]float64, n*(n+1)/2)
	for i, off := 0, 0; i < n; i++ {
		copy(l[off:off+i+1], w[i*n:i*n+i+1])
		off += i + 1
	}
	return &Cholesky{n: n, l: l}, nil
}

// cholFactorPanel factors columns [k0, k1) of the n×n matrix w in place with
// the right-looking scalar loop, assuming the contributions of all columns
// below k0 have already been subtracted from w[:, k0:] (for k0 = 0 this is
// the full scalar factorization). Within the panel every inner product
// accumulates in ascending column order, one multiply-subtract at a time —
// the op ordering the blocked trailing update preserves.
func cholFactorPanel(w []float64, n, k0, k1 int) error {
	for k := k0; k < k1; k++ {
		d := w[k*n+k]
		wk := w[k*n+k0 : k*n+k]
		for _, v := range wk {
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("mat: matrix not positive definite at pivot %d (d=%g)", k, d)
		}
		dk := math.Sqrt(d)
		w[k*n+k] = dk
		for i := k + 1; i < n; i++ {
			s := w[i*n+k]
			wi := w[i*n+k0 : i*n+k]
			for p, v := range wk {
				s -= wi[p] * v
			}
			w[i*n+k] = s / dk
		}
	}
	return nil
}

// cholFactorBlocked factors w in place: panel factor, then a parallel
// trailing update that subtracts the panel's outer product from the
// remaining lower triangle. Per matrix entry the subtraction order is
// identical to the scalar loop's, so the result is bit-identical to
// cholFactorPanel(w, n, 0, n) at any panel width and any worker count.
func cholFactorBlocked(w []float64, n, panel int) error {
	// bt holds the transposed panel: bt[p][j] = w[(k1+j)*n + k0+p], so the
	// trailing update streams both operands contiguously.
	bt := make([]float64, panel*n)
	for k0 := 0; k0 < n; k0 += panel {
		k1 := k0 + panel
		if k1 > n {
			k1 = n
		}
		if err := cholFactorPanel(w, n, k0, k1); err != nil {
			return err
		}
		if k1 >= n {
			break
		}
		nb, m := k1-k0, n-k1
		for p := 0; p < nb; p++ {
			row := bt[p*m : (p+1)*m]
			for j := 0; j < m; j++ {
				row[j] = w[(k1+j)*n+k0+p]
			}
		}
		cholTrailingParallel(w, bt, n, k0, k1)
	}
	return nil
}

// cholTrailingParallel fans the trailing update's rows [k1, n) out to
// goroutines. Row i updates i−k1+1 entries, so equal ROW chunks would hand
// the last worker ~2× the average work; boundaries at k1 + m·√(k/W) instead
// give each worker an equal share of the triangle's area. Every entry is
// still written by exactly one goroutine, so the split cannot change
// results. The update touches the m(m+1)/2 lower-triangle entries of the
// trailing block, nb multiply-subtracts each; below the parallel threshold
// it runs inline.
func cholTrailingParallel(w, bt []float64, n, k0, k1 int) {
	nb, m := k1-k0, n-k1
	workers := runtime.GOMAXPROCS(0)
	if nb*(m*(m+1)/2) < parallelThreshold || workers < 2 {
		cholTrailingRows(w, bt, n, k0, k1, k1, n)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	prev := k1
	for k := 1; k <= workers; k++ {
		hi := k1 + int(math.Round(float64(m)*math.Sqrt(float64(k)/float64(workers))))
		if k == workers {
			hi = n
		}
		if hi <= prev {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			cholTrailingRows(w, bt, n, k0, k1, lo, hi)
		}(prev, hi)
		prev = hi
	}
	wg.Wait()
}

// cholTrailingRows subtracts the current panel's contribution from rows
// [lo, hi) of the trailing lower triangle: w[i][j] -= Σ_p w[i][p]·w[j][p]
// for j in [k1, i], with p ascending over the panel — the mulRange ikj loop
// shape, one rounded multiply-subtract per term like the scalar loop.
func cholTrailingRows(w, bt []float64, n, k0, k1, lo, hi int) {
	nb, m := k1-k0, n-k1
	for i := lo; i < hi; i++ {
		ci := w[i*n+k1 : i*n+i+1]
		for p := 0; p < nb; p++ {
			v := w[i*n+k0+p]
			btp := bt[p*m : p*m+len(ci)]
			for j, bv := range btp {
				ci[j] -= v * bv
			}
		}
	}
}

// Size returns the factorized dimension.
func (c *Cholesky) Size() int { return c.n }

// L returns the lower-triangular factor unpacked into a full n×n matrix
// (a copy; the strict upper triangle is zero).
func (c *Cholesky) L() *Dense {
	out := NewDense(c.n, c.n)
	for i, off := 0, 0; i < c.n; i++ {
		copy(out.Data[i*c.n:i*c.n+i+1], c.l[off:off+i+1])
		off += i + 1
	}
	return out
}

// SolveVec solves A x = b for x, overwriting nothing.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	if len(b) != c.n {
		panic("mat: Cholesky SolveVec length mismatch")
	}
	x := append([]float64(nil), b...)
	c.solveInPlace(x)
	return x
}

// solveInPlace solves A x = b where b is overwritten with x.
func (c *Cholesky) solveInPlace(x []float64) {
	n, l := c.n, c.l
	// Forward substitution L y = b; packed row i is contiguous.
	for i, base := 0, 0; i < n; i++ {
		s := x[i]
		row := l[base : base+i]
		for p, v := range row {
			s -= v * x[p]
		}
		x[i] = s / l[base+i]
		base += i + 1
	}
	// Back substitution Lᵀ x = y; column i of L walks rows below the
	// diagonal, index (p, i) = p(p+1)/2 + i stepping by p+1 per row.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		off := (i+1)*(i+2)/2 + i
		for p := i + 1; p < n; p++ {
			s -= l[off] * x[p]
			off += p + 1
		}
		x[i] = s / l[i*(i+1)/2+i]
	}
}

// SolveMat solves A X = B for all right-hand-side columns at once. The
// substitutions sweep matrix rows and update every RHS column in one
// contiguous inner loop (B's row-major layout makes the RHS dimension the
// fast axis), instead of gathering and scattering one column at a time; for
// large systems the RHS columns are split across goroutines (the same
// fan-out Mul and the blocked factorization use). Each column's arithmetic
// is ordered exactly as SolveVec's, so results are bit-identical to the
// column-by-column solve at any worker count.
func (c *Cholesky) SolveMat(b *Dense) *Dense {
	if b.RowsN != c.n {
		panic("mat: Cholesky SolveMat dimension mismatch")
	}
	out := b.Clone()
	parallelRows(0, b.ColsN, c.n*c.n*b.ColsN, func(c0, c1 int) {
		c.solveMatCols(out, c0, c1)
	})
	return out
}

// solveMatCols runs both substitutions over RHS columns [c0, c1) of x, which
// holds B on entry and X on return.
func (c *Cholesky) solveMatCols(x *Dense, c0, c1 int) {
	n, l, m := c.n, c.l, x.ColsN
	for i, base := 0, 0; i < n; i++ {
		xi := x.Data[i*m+c0 : i*m+c1]
		row := l[base : base+i]
		for p, v := range row {
			xp := x.Data[p*m+c0 : p*m+c1]
			for j, pv := range xp {
				xi[j] -= v * pv
			}
		}
		d := l[base+i]
		for j := range xi {
			xi[j] /= d
		}
		base += i + 1
	}
	for i := n - 1; i >= 0; i-- {
		xi := x.Data[i*m+c0 : i*m+c1]
		off := (i+1)*(i+2)/2 + i
		for p := i + 1; p < n; p++ {
			v := l[off]
			off += p + 1
			xp := x.Data[p*m+c0 : p*m+c1]
			for j, pv := range xp {
				xi[j] -= v * pv
			}
		}
		d := l[i*(i+1)/2+i]
		for j := range xi {
			xi[j] /= d
		}
	}
}

// LogDet returns log|A| = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i, off := 0, 0; i < c.n; i++ {
		s += math.Log(c.l[off+i])
		off += i + 1
	}
	return 2 * s
}

// LSolveVec solves L y = b (forward substitution only). Gaussian process
// predictive variance needs this half-solve.
func (c *Cholesky) LSolveVec(b []float64) []float64 {
	y := append([]float64(nil), b...)
	c.LSolveVecInto(y, y)
	return y
}

// LSolveVecInto solves L y = b into dst without allocating. dst and b must
// both have length n; they may alias. Hot prediction loops (GP posterior
// variance) use this to reuse one scratch buffer across rows.
func (c *Cholesky) LSolveVecInto(dst, b []float64) {
	if len(b) != c.n || len(dst) != c.n {
		panic("mat: LSolveVecInto length mismatch")
	}
	if &dst[0] != &b[0] {
		copy(dst, b)
	}
	n, l := c.n, c.l
	for i, base := 0, 0; i < n; i++ {
		s := dst[i]
		row := l[base : base+i]
		for p, v := range row {
			s -= v * dst[p]
		}
		dst[i] = s / l[base+i]
		base += i + 1
	}
}

// SolveSPD solves A x = b for SPD A, adding escalating jitter to the
// diagonal if the factorization fails. Kernel matrices are routinely
// borderline-singular, so this is the standard robust entry point used by
// the regressors. It returns an error only if even large jitter fails.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	ch, err := RobustCholesky(a)
	if err != nil {
		return nil, err
	}
	return ch.SolveVec(b), nil
}

// RobustCholesky factorizes a with escalating diagonal jitter on failure.
// One scratch copy of a carries both the accumulating jitter and the
// factorization workspace across every retry, so the attempts allocate no
// further n² buffers; a itself is untouched.
func RobustCholesky(a *Dense) (*Cholesky, error) {
	blocked := useBlocked(a.RowsN)
	scratch := make([]float64, a.RowsN*a.ColsN)
	ch, err := newCholesky(a, blocked, scratch)
	if err == nil {
		return ch, nil
	}
	// Scale jitter to the mean diagonal magnitude.
	var diag float64
	for i := 0; i < a.RowsN; i++ {
		diag += math.Abs(a.At(i, i))
	}
	diag /= float64(a.RowsN)
	if diag == 0 {
		diag = 1
	}
	work := a.Clone()
	jitter := diag * 1e-12
	total := 0.0
	for attempt := 0; attempt < 12; attempt++ {
		work.AddScaledIdentity(jitter)
		total += jitter
		if ch, err = newCholesky(work, blocked, scratch); err == nil {
			return ch, nil
		}
		jitter *= 10
	}
	return nil, fmt.Errorf("mat: RobustCholesky failed even with total jitter %g: %w", total, err)
}
