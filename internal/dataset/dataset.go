// Package dataset defines the performance-record schema the paper's models
// are trained on — ⟨O, V, NumNodes, TileSize⟩ → single-iteration wall time —
// together with CSV persistence, splits, and candidate-configuration grids.
package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"parcost/internal/rng"
	"parcost/internal/stats"
)

// Config is one runtime-parameter configuration: the problem size (number
// of occupied orbitals O and virtual orbitals V) and the execution
// parameters (node count and tensor tile size).
type Config struct {
	O        int
	V        int
	Nodes    int
	TileSize int
}

// Features returns the 4-feature vector the paper's regressors consume.
func (c Config) Features() []float64 {
	return []float64{float64(c.O), float64(c.V), float64(c.Nodes), float64(c.TileSize)}
}

// Problem returns the (O, V) problem size of the configuration.
func (c Config) Problem() Problem { return Problem{O: c.O, V: c.V} }

// String renders the configuration compactly.
func (c Config) String() string {
	return fmt.Sprintf("(O=%d V=%d nodes=%d tile=%d)", c.O, c.V, c.Nodes, c.TileSize)
}

// Problem identifies a molecular problem size.
type Problem struct {
	O, V int
}

// N returns the total number of orbitals O+V.
func (p Problem) N() int { return p.O + p.V }

// String renders the problem size.
func (p Problem) String() string { return fmt.Sprintf("(O=%d, V=%d)", p.O, p.V) }

// Record is one measured (or simulated) experiment.
type Record struct {
	Config  Config
	Seconds float64 // wall time of one CCSD iteration
}

// NodeHours returns the node-hour cost of the record, the Budget Question's
// objective (nodes × seconds / 3600).
func (r Record) NodeHours() float64 {
	return float64(r.Config.Nodes) * r.Seconds / 3600
}

// Dataset is a collection of records from one machine.
type Dataset struct {
	Machine string
	Records []Record
}

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.Records) }

// Features returns the n×4 feature matrix.
func (d *Dataset) Features() [][]float64 {
	x := make([][]float64, len(d.Records))
	for i, r := range d.Records {
		x[i] = r.Config.Features()
	}
	return x
}

// Targets returns the wall-time vector in seconds.
func (d *Dataset) Targets() []float64 {
	y := make([]float64, len(d.Records))
	for i, r := range d.Records {
		y[i] = r.Seconds
	}
	return y
}

// NodeHourTargets returns the node-hours vector (BQ objective).
func (d *Dataset) NodeHourTargets() []float64 {
	y := make([]float64, len(d.Records))
	for i, r := range d.Records {
		y[i] = r.NodeHours()
	}
	return y
}

// Subset returns a new dataset holding the records at the given indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{Machine: d.Machine, Records: make([]Record, len(idx))}
	for i, j := range idx {
		out.Records[i] = d.Records[j]
	}
	return out
}

// Split shuffles and partitions the dataset into train and test subsets
// with the given test fraction (the paper uses 25%).
func (d *Dataset) Split(testFrac float64, r *rng.Source) (train, test *Dataset) {
	trIdx, teIdx := stats.TrainTestSplit(len(d.Records), testFrac, r)
	return d.Subset(trIdx), d.Subset(teIdx)
}

// Problems returns the distinct problem sizes present, sorted by (O, V).
func (d *Dataset) Problems() []Problem {
	seen := map[Problem]bool{}
	var out []Problem
	for _, r := range d.Records {
		p := r.Config.Problem()
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].O != out[j].O {
			return out[i].O < out[j].O
		}
		return out[i].V < out[j].V
	})
	return out
}

// ForProblem returns the indices of all records with the given problem size.
func (d *Dataset) ForProblem(p Problem) []int {
	var idx []int
	for i, r := range d.Records {
		if r.Config.O == p.O && r.Config.V == p.V {
			idx = append(idx, i)
		}
	}
	return idx
}

// csvHeader is the on-disk column layout.
var csvHeader = []string{"O", "V", "nodes", "tilesize", "seconds"}

// WriteCSV writes the dataset in the canonical five-column layout.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range d.Records {
		row := []string{
			strconv.Itoa(r.Config.O),
			strconv.Itoa(r.Config.V),
			strconv.Itoa(r.Config.Nodes),
			strconv.Itoa(r.Config.TileSize),
			strconv.FormatFloat(r.Seconds, 'g', 17, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the dataset to a file path. Close is checked explicitly:
// a full disk can surface the write failure only at close, and a silently
// truncated dataset would corrupt every run trained from it.
func (d *Dataset) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteCSV(f); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(machine string, r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: empty CSV")
	}
	if len(rows[0]) != len(csvHeader) {
		return nil, fmt.Errorf("dataset: expected %d columns, got %d", len(csvHeader), len(rows[0]))
	}
	d := &Dataset{Machine: machine}
	for i, row := range rows[1:] {
		var rec Record
		vals := make([]float64, len(row))
		for j, s := range row {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d col %d: %w", i+2, j, err)
			}
			vals[j] = v
		}
		rec.Config = Config{O: int(vals[0]), V: int(vals[1]), Nodes: int(vals[2]), TileSize: int(vals[3])}
		rec.Seconds = vals[4]
		if rec.Seconds <= 0 {
			return nil, fmt.Errorf("dataset: row %d has non-positive runtime %g", i+2, rec.Seconds)
		}
		d.Records = append(d.Records, rec)
	}
	return d, nil
}

// LoadCSV reads a dataset from a file path.
func LoadCSV(machine, path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(machine, f)
}

// PaperProblems returns the (O, V) problem sizes that appear in the paper's
// result tables (union of Tables 3–6), representing the molecular systems
// measured on Aurora and Frontier.
func PaperProblems() []Problem {
	return []Problem{
		{44, 260}, {49, 663}, {81, 835}, {85, 698}, {99, 718}, {99, 1021},
		{116, 575}, {116, 840}, {116, 1184}, {134, 523}, {134, 951},
		{134, 1200}, {146, 278}, {146, 591}, {146, 1096}, {146, 1568},
		{180, 720}, {180, 1070}, {196, 764}, {204, 969}, {235, 1007},
		{280, 1040}, {345, 791},
	}
}

// Grid describes the candidate (nodes, tilesize) sweep used both to
// generate training data and to answer STQ/BQ queries (the paper sweeps
// "a range of typical interest").
type Grid struct {
	Nodes     []int
	TileSizes []int
}

// DefaultGrid covers the node counts and tile sizes observed in the
// paper's tables: nodes 5–900, tile sizes 40–180.
func DefaultGrid() Grid {
	return Grid{
		Nodes: []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 65, 70, 75, 80,
			90, 95, 110, 120, 150, 185, 200, 220, 240, 260, 300, 320, 350,
			400, 500, 600, 700, 800, 900},
		TileSizes: []int{40, 50, 60, 70, 73, 80, 90, 100, 110, 120, 130, 140, 150, 160, 180},
	}
}

// Configs expands the grid for one problem size.
func (g Grid) Configs(p Problem) []Config {
	out := make([]Config, 0, len(g.Nodes)*len(g.TileSizes))
	for _, n := range g.Nodes {
		for _, t := range g.TileSizes {
			out = append(out, Config{O: p.O, V: p.V, Nodes: n, TileSize: t})
		}
	}
	return out
}

// Size returns the number of configurations per problem.
func (g Grid) Size() int { return len(g.Nodes) * len(g.TileSizes) }

// GridFromDataset builds the candidate grid from the distinct node counts
// and tile sizes observed in a dataset. This keeps STQ/BQ recommendations
// within the explored configuration space, rather than extrapolating to
// node/tile values the model never trained on.
func GridFromDataset(d *Dataset) Grid {
	nodeSet := map[int]bool{}
	tileSet := map[int]bool{}
	for _, r := range d.Records {
		nodeSet[r.Config.Nodes] = true
		tileSet[r.Config.TileSize] = true
	}
	nodes := make([]int, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	tiles := make([]int, 0, len(tileSet))
	for t := range tileSet {
		tiles = append(tiles, t)
	}
	sort.Ints(nodes)
	sort.Ints(tiles)
	return Grid{Nodes: nodes, TileSizes: tiles}
}
