package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"parcost/internal/rng"
)

func sample() *Dataset {
	return &Dataset{Machine: "aurora", Records: []Record{
		{Config{44, 260, 5, 40}, 17.41},
		{Config{81, 835, 185, 80}, 66.81},
		{Config{81, 835, 25, 80}, 193.26},
		{Config{99, 718, 260, 60}, 53.83},
	}}
}

func TestConfigFeatures(t *testing.T) {
	f := Config{O: 1, V: 2, Nodes: 3, TileSize: 4}.Features()
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("Features = %v", f)
		}
	}
}

func TestConfigProblemAndString(t *testing.T) {
	c := Config{O: 10, V: 20, Nodes: 2, TileSize: 40}
	if p := c.Problem(); p.O != 10 || p.V != 20 {
		t.Fatalf("Problem = %+v", p)
	}
	if !strings.Contains(c.String(), "O=10") {
		t.Fatal("String missing O")
	}
	if (Problem{10, 20}).N() != 30 {
		t.Fatal("N wrong")
	}
}

func TestNodeHours(t *testing.T) {
	r := Record{Config{O: 1, V: 1, Nodes: 100, TileSize: 40}, 36}
	if nh := r.NodeHours(); math.Abs(nh-1.0) > 1e-12 {
		t.Fatalf("NodeHours = %v, want 1", nh)
	}
}

func TestFeaturesTargets(t *testing.T) {
	d := sample()
	x := d.Features()
	y := d.Targets()
	if len(x) != 4 || len(y) != 4 {
		t.Fatal("wrong lengths")
	}
	if x[0][0] != 44 || x[0][1] != 260 || y[0] != 17.41 {
		t.Fatal("wrong values")
	}
	nh := d.NodeHourTargets()
	if math.Abs(nh[0]-5*17.41/3600) > 1e-12 {
		t.Fatalf("NodeHourTargets[0] = %v", nh[0])
	}
}

func TestSubset(t *testing.T) {
	d := sample()
	s := d.Subset([]int{2, 0})
	if s.Len() != 2 || s.Records[0].Seconds != 193.26 || s.Records[1].Seconds != 17.41 {
		t.Fatalf("Subset wrong: %+v", s.Records)
	}
	if s.Machine != "aurora" {
		t.Fatal("machine not carried")
	}
}

func TestSplit(t *testing.T) {
	d := &Dataset{Machine: "m"}
	for i := 0; i < 100; i++ {
		d.Records = append(d.Records, Record{Config{O: i, V: i, Nodes: 1, TileSize: 40}, float64(i + 1)})
	}
	train, test := d.Split(0.25, rng.New(1))
	if train.Len() != 75 || test.Len() != 25 {
		t.Fatalf("split %d/%d", train.Len(), test.Len())
	}
	// Disjoint coverage by O value.
	seen := map[int]int{}
	for _, r := range train.Records {
		seen[r.Config.O]++
	}
	for _, r := range test.Records {
		seen[r.Config.O]++
	}
	for i := 0; i < 100; i++ {
		if seen[i] != 1 {
			t.Fatalf("sample O=%d appears %d times", i, seen[i])
		}
	}
}

func TestProblemsSortedDistinct(t *testing.T) {
	d := sample()
	ps := d.Problems()
	if len(ps) != 3 {
		t.Fatalf("Problems = %v", ps)
	}
	if ps[0] != (Problem{44, 260}) || ps[1] != (Problem{81, 835}) || ps[2] != (Problem{99, 718}) {
		t.Fatalf("Problems order: %v", ps)
	}
}

func TestForProblem(t *testing.T) {
	d := sample()
	idx := d.ForProblem(Problem{81, 835})
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 2 {
		t.Fatalf("ForProblem = %v", idx)
	}
	if got := d.ForProblem(Problem{1, 1}); len(got) != 0 {
		t.Fatal("nonexistent problem matched")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("aurora", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip length %d", back.Len())
	}
	for i := range d.Records {
		if back.Records[i] != d.Records[i] {
			t.Fatalf("record %d: %+v vs %+v", i, back.Records[i], d.Records[i])
		}
	}
}

func TestSaveLoadCSV(t *testing.T) {
	d := sample()
	path := filepath.Join(t.TempDir(), "ds.csv")
	if err := d.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV("aurora", path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatal("load length mismatch")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("m", strings.NewReader("")); err == nil {
		t.Fatal("empty CSV accepted")
	}
	if _, err := ReadCSV("m", strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Fatal("wrong column count accepted")
	}
	bad := "O,V,nodes,tilesize,seconds\n1,2,3,4,notanumber\n"
	if _, err := ReadCSV("m", strings.NewReader(bad)); err == nil {
		t.Fatal("non-numeric value accepted")
	}
	neg := "O,V,nodes,tilesize,seconds\n1,2,3,4,-5\n"
	if _, err := ReadCSV("m", strings.NewReader(neg)); err == nil {
		t.Fatal("negative runtime accepted")
	}
}

func TestPaperProblems(t *testing.T) {
	ps := PaperProblems()
	if len(ps) != 23 {
		t.Fatalf("expected 23 paper problems, got %d", len(ps))
	}
	// Spot-check entries from Tables 3 and 4.
	want := map[Problem]bool{{44, 260}: true, {49, 663}: true, {345, 791}: true}
	found := 0
	for _, p := range ps {
		if want[p] {
			found++
		}
	}
	if found != 3 {
		t.Fatal("paper problems missing expected entries")
	}
}

func TestGridConfigs(t *testing.T) {
	g := Grid{Nodes: []int{1, 2}, TileSizes: []int{40, 50, 60}}
	cfgs := g.Configs(Problem{10, 20})
	if len(cfgs) != g.Size() || g.Size() != 6 {
		t.Fatalf("grid size %d", len(cfgs))
	}
	for _, c := range cfgs {
		if c.O != 10 || c.V != 20 {
			t.Fatal("problem not propagated")
		}
	}
}

func TestDefaultGridCoversPaperTables(t *testing.T) {
	g := DefaultGrid()
	hasNode := map[int]bool{}
	for _, n := range g.Nodes {
		hasNode[n] = true
	}
	hasTile := map[int]bool{}
	for _, ts := range g.TileSizes {
		hasTile[ts] = true
	}
	// Node counts and tile sizes appearing in paper Tables 3–6 must be
	// representable on the default grid.
	for _, n := range []int{5, 185, 220, 400, 800, 900} {
		if !hasNode[n] {
			t.Fatalf("default grid missing node count %d", n)
		}
	}
	for _, ts := range []int{40, 60, 73, 80, 100, 130, 150} {
		if !hasTile[ts] {
			t.Fatalf("default grid missing tile size %d", ts)
		}
	}
}

// Property: CSV round trip preserves any valid dataset.
func TestQuickCSVRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		d := &Dataset{Machine: "m"}
		n := 1 + r.Intn(30)
		for i := 0; i < n; i++ {
			d.Records = append(d.Records, Record{
				Config:  Config{O: 1 + r.Intn(300), V: 1 + r.Intn(1500), Nodes: 1 + r.Intn(900), TileSize: 40 + r.Intn(140)},
				Seconds: r.Uniform(0.1, 1000),
			})
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV("m", &buf)
		if err != nil || back.Len() != d.Len() {
			return false
		}
		for i := range d.Records {
			if back.Records[i] != d.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Subset(ForProblem(p)) contains only records of problem p.
func TestQuickForProblemConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		d := &Dataset{Machine: "m"}
		for i := 0; i < 50; i++ {
			d.Records = append(d.Records, Record{
				Config:  Config{O: 10 + r.Intn(3), V: 100 + r.Intn(3), Nodes: 1 + r.Intn(10), TileSize: 40},
				Seconds: 1,
			})
		}
		for _, p := range d.Problems() {
			sub := d.Subset(d.ForProblem(p))
			for _, rec := range sub.Records {
				if rec.Config.Problem() != p {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
