module parcost

go 1.24
