package parcost_test

import (
	"bytes"
	"testing"

	"parcost/internal/ccsd"
	"parcost/internal/dataset"
	"parcost/internal/guide"
	"parcost/internal/machine"
	"parcost/internal/ml/ensemble"
	"parcost/internal/ml/tree"
	"parcost/internal/rng"
	"parcost/internal/stats"
)

// TestEndToEndPipeline exercises the full public path: simulate a dataset,
// round-trip it through CSV, train a model, and answer STQ/BQ — the journey
// a downstream user takes.
func TestEndToEndPipeline(t *testing.T) {
	spec := machine.Aurora()
	data := ccsd.Generate(spec, ccsd.GenConfig{
		Problems: []dataset.Problem{{O: 44, V: 260}, {O: 146, V: 1096}, {O: 345, V: 791}},
		Grid:     dataset.Grid{Nodes: []int{5, 15, 50, 100, 300, 600, 900}, TileSizes: []int{40, 60, 80, 100, 120}},
		Noise:    true, Seed: 1,
	})
	if data.Len() == 0 {
		t.Fatal("empty dataset")
	}

	// CSV round trip.
	var buf bytes.Buffer
	if err := data.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := dataset.ReadCSV("aurora", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != data.Len() {
		t.Fatalf("CSV round trip changed length: %d vs %d", loaded.Len(), data.Len())
	}

	// Train and answer questions.
	gb := ensemble.NewGradientBoosting(200, 0.1, tree.Params{MaxDepth: 8}, 1)
	adv, err := guide.NewAdvisor(gb, loaded)
	if err != nil {
		t.Fatal(err)
	}
	oracle := guide.NewSimOracle(spec)
	p := dataset.Problem{O: 146, V: 1096}
	stq, err := adv.Recommend(p, guide.ShortestTime, oracle)
	if err != nil {
		t.Fatal(err)
	}
	bq, err := adv.Recommend(p, guide.Budget, oracle)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's qualitative contract: STQ uses more nodes than BQ.
	if stq.Config.Nodes <= bq.Config.Nodes {
		t.Fatalf("STQ nodes %d should exceed BQ nodes %d", stq.Config.Nodes, bq.Config.Nodes)
	}
}

// TestModelAccuracyOrdering checks the paper's central modeling claim at the
// integration level: a tuned GB predicts runtime well, and Aurora is easier
// to predict than Frontier.
func TestModelAccuracyOrdering(t *testing.T) {
	auroraMAPE := trainAndScore(t, machine.Aurora(), 1200, 1)
	frontierMAPE := trainAndScore(t, machine.Frontier(), 1200, 2)
	if auroraMAPE > 0.25 {
		t.Fatalf("Aurora MAPE %.3f unexpectedly high", auroraMAPE)
	}
	if auroraMAPE >= frontierMAPE {
		t.Fatalf("Aurora (%.3f) should be easier to predict than Frontier (%.3f)", auroraMAPE, frontierMAPE)
	}
}

func trainAndScore(t *testing.T, spec machine.Spec, size int, seed uint64) float64 {
	t.Helper()
	data := ccsd.Generate(spec, ccsd.GenConfig{TargetSize: size, Noise: true, Seed: seed})
	train, test := data.Split(0.25, rng.New(seed+10))
	gb := ensemble.NewGradientBoosting(300, 0.1, tree.Params{MaxDepth: 10}, seed)
	if err := gb.Fit(train.Features(), train.Targets()); err != nil {
		t.Fatal(err)
	}
	return stats.MAPE(test.Targets(), gb.Predict(test.Features()))
}

// TestDeterministicReproducibility confirms the whole pipeline is
// bit-reproducible given fixed seeds.
func TestDeterministicReproducibility(t *testing.T) {
	gen := func() *dataset.Dataset {
		return ccsd.Generate(machine.Frontier(), ccsd.GenConfig{TargetSize: 500, Noise: true, Seed: 99})
	}
	a, b := gen(), gen()
	if a.Len() != b.Len() {
		t.Fatal("dataset length not reproducible")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d not reproducible", i)
		}
	}
}
