// Command datagen generates CCSD performance datasets by sweeping the
// simulator over problem sizes, node counts, and tile sizes, writing the
// same ⟨O, V, nodes, tilesize⟩ → seconds schema the paper's models consume.
//
// Usage:
//
//	datagen -machine aurora -size 2329 -out aurora.csv
//	datagen -machine frontier -size 2454 -out frontier.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"parcost/internal/ccsd"
	"parcost/internal/machine"
)

func main() {
	var (
		machineName = flag.String("machine", "aurora", "target machine: aurora or frontier")
		size        = flag.Int("size", 0, "target dataset size (0 = full feasible grid)")
		seed        = flag.Uint64("seed", 20240601, "generation seed")
		noise       = flag.Bool("noise", true, "apply run-to-run noise")
		minSec      = flag.Float64("min-seconds", 10, "minimum runtime to keep (typical-use band)")
		maxSec      = flag.Float64("max-seconds", 1000, "maximum runtime to keep (typical-use band)")
		out         = flag.String("out", "", "output CSV path (default: <machine>.csv)")
	)
	flag.Parse()

	spec, err := machine.ByName(*machineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = *machineName + ".csv"
	}

	fmt.Fprintf(os.Stderr, "generating %s dataset (size=%d, noise=%v)...\n", spec.Name, *size, *noise)
	d := ccsd.Generate(spec, ccsd.GenConfig{
		TargetSize: *size,
		Noise:      *noise,
		Seed:       *seed,
		MinSeconds: *minSec,
		MaxSeconds: *maxSec,
	})
	if err := d.SaveCSV(path); err != nil {
		fmt.Fprintln(os.Stderr, "write failed:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records to %s\n", d.Len(), path)
}
