// Command experiments regenerates the paper's tables and figures using
// parcost's simulator and ML stack. Each experiment prints the same
// rows/series the paper reports; figures also write CSV series to -outdir.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp table3
//	experiments -exp fig3 -outdir results
//
// Experiments: table1, fig1, fig2, table2, table3, table4, table5, table6,
// fig3, fig4, fig5, fig6, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"parcost/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (table1..6, fig1..6, all)")
		outdir     = flag.String("outdir", "results", "directory for CSV output")
		auroraSize = flag.Int("aurora-size", 2329, "Aurora dataset size")
		frontSize  = flag.Int("frontier-size", 2454, "Frontier dataset size")
		fast       = flag.Bool("fast", false, "smaller budgets for a quick run")
		seed       = flag.Uint64("seed", 20240601, "master seed")
	)
	flag.Parse()

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	hc := experiments.DefaultHarnessConfig()
	hc.AuroraSize = *auroraSize
	hc.FrontierSize = *frontSize
	hc.GenSeed = *seed
	if *fast {
		hc.AuroraSize, hc.FrontierSize = 600, 600
	}
	fmt.Fprintln(os.Stderr, "generating datasets...")
	h := experiments.NewHarness(hc)

	mc := experiments.DefaultModelComparisonConfig()
	ac := experiments.DefaultActiveConfig()
	if *fast {
		mc.MaxTrain = 200
		mc.RandomIters, mc.BayesIters = 5, 6
		mc.Codes = []string{"GB", "RF", "DT", "KR", "RG"}
		ac.Rounds = 8
	}

	run := func(id string) error {
		switch id {
		case "table1":
			fmt.Print(h.Table1().Render())
		case "fig1":
			cmp, err := h.Figure1or2("aurora", mc)
			if err != nil {
				return err
			}
			fmt.Print(cmp.Render())
			writeCSV(*outdir, "figure1_aurora_models.csv", cmp.CSV())
		case "fig2":
			cmp, err := h.Figure1or2("frontier", mc)
			if err != nil {
				return err
			}
			fmt.Print(cmp.Render())
			writeCSV(*outdir, "figure2_frontier_models.csv", cmp.CSV())
		case "table2":
			fmt.Print(h.Table2(*seed).Render())
		case "table3":
			r, err := h.Table3(*seed)
			return renderTable(r, err)
		case "table4":
			r, err := h.Table4(*seed)
			return renderTable(r, err)
		case "table5":
			r, err := h.Table5(*seed)
			return renderTable(r, err)
		case "table6":
			r, err := h.Table6(*seed)
			return renderTable(r, err)
		case "fig3":
			r, err := h.Figure3(ac)
			return renderActive(r, err, *outdir, "figure3_aurora_active.csv")
		case "fig4":
			r, err := h.Figure4(ac)
			return renderActive(r, err, *outdir, "figure4_frontier_active.csv")
		case "fig5":
			r, err := h.Figure5(ac)
			return renderActive(r, err, *outdir, "figure5_aurora_goals.csv")
		case "fig6":
			r, err := h.Figure6(ac)
			return renderActive(r, err, *outdir, "figure6_frontier_goals.csv")
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		return nil
	}

	var ids []string
	if *exp == "all" {
		ids = []string{"table1", "fig1", "fig2", "table2", "table3", "table4", "table5", "table6", "fig3", "fig4", "fig5", "fig6"}
	} else {
		ids = []string{*exp}
	}
	for _, id := range ids {
		fmt.Fprintf(os.Stderr, "=== %s ===\n", id)
		if err := run(id); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func renderTable(r experiments.STQResult, err error) error {
	if err != nil {
		return err
	}
	fmt.Print(r.Render())
	return nil
}

func renderActive(r experiments.ActiveResult, err error, outdir, name string) error {
	if err != nil {
		return err
	}
	fmt.Print(r.Render())
	writeCSV(outdir, name, r.CSV())
	return nil
}

func writeCSV(dir, name, content string) {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "csv write failed:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
