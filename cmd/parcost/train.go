package main

import (
	"flag"
	"fmt"

	"parcost/internal/guide"
)

// runTrain fits the paper's GB model on a dataset and writes the advisor
// artifact (model + candidate grid + machine) that stq/bq/predict/serve
// load, splitting training time from query time.
func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	var (
		data        = fs.String("data", "", "dataset CSV (default: simulate for -machine)")
		machineName = fs.String("machine", "aurora", "machine")
		out         = fs.String("out", "", "output artifact path (required)")
		trees       = fs.Int("trees", 750, "GB estimators")
		depth       = fs.Int("depth", 10, "GB max depth")
		seed        = fs.Uint64("seed", 1, "seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	if *trees <= 0 || *depth <= 0 {
		return fmt.Errorf("-trees and -depth must be positive (got trees=%d depth=%d)", *trees, *depth)
	}
	d, spec, err := loadOrGenerate(*data, *machineName, *seed)
	if err != nil {
		return err
	}
	adv, err := guide.NewAdvisor(buildGB(*trees, *depth, *seed), d)
	if err != nil {
		return err
	}
	if err := guide.SaveAdvisor(*out, adv, spec.Name); err != nil {
		return err
	}
	fmt.Printf("Trained %s on %d %s records (grid %d nodes × %d tiles)\n",
		adv.Model.Name(), d.Len(), spec.Name, len(adv.Grid.Nodes), len(adv.Grid.TileSizes))
	fmt.Printf("Artifact written to %s\n", *out)
	return nil
}
