package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"parcost/internal/guide"
	"parcost/internal/machine"
)

// now is the command clock; tests substitute a fake to pin TrainedAt stamps.
var now = time.Now

// runTrain fits the paper's GB model and writes the artifact that
// stq/bq/predict/serve load, splitting training time from query time.
//
// Two shapes:
//
//   - `-machine a` (default): one advisor, written in the single-advisor
//     artifact format (unchanged since PR 3; everything still loads it).
//   - `-machines a,b`: one advisor per machine fitted in a single run, all
//     written into one fleet bundle that `serve` hosts behind one endpoint.
func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	var (
		data         = fs.String("data", "", "dataset CSV (default: simulate for -machine; single-machine only)")
		machineName  = fs.String("machine", "aurora", "machine (single-advisor artifact)")
		machineNames = fs.String("machines", "", "comma-separated machines, e.g. aurora,frontier (fleet bundle)")
		out          = fs.String("out", "", "output artifact path (required)")
		trees        = fs.Int("trees", 750, "GB estimators")
		depth        = fs.Int("depth", 10, "GB max depth")
		seed         = fs.Uint64("seed", 1, "seed")
		genSize      = fs.Int("gensize", defaultGenSize, "simulated dataset size when -data is omitted")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	if *trees <= 0 || *depth <= 0 {
		return fmt.Errorf("-trees and -depth must be positive (got trees=%d depth=%d)", *trees, *depth)
	}
	if *genSize <= 0 {
		return fmt.Errorf("-gensize must be positive (got %d)", *genSize)
	}
	if *machineNames == "" {
		d, spec, err := loadOrGenerate(*data, *machineName, *seed, *genSize)
		if err != nil {
			return err
		}
		adv, err := guide.NewAdvisor(buildGB(*trees, *depth, *seed), d)
		if err != nil {
			return err
		}
		if err := guide.SaveAdvisor(*out, adv, spec.Name); err != nil {
			return err
		}
		fmt.Printf("Trained %s on %d %s records (grid %d nodes × %d tiles)\n",
			adv.Model.Name(), d.Len(), spec.Name, len(adv.Grid.Nodes), len(adv.Grid.TileSizes))
		fmt.Printf("Artifact written to %s\n", *out)
		return nil
	}

	// Fleet path. A CSV names one machine's measurements, so it cannot feed a
	// multi-machine fleet; each machine's dataset is simulated. Setting
	// -machine alongside -machines would silently lose, so reject it.
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["machine"] {
		return fmt.Errorf("-machine has no effect with -machines; name every machine in -machines")
	}
	if set["data"] {
		return fmt.Errorf("-data is single-machine; fleet training simulates each machine's dataset")
	}
	// Validate EVERY machine name before fitting anything: training is
	// minutes per machine, so a typo in the last name must not waste the
	// fits that came before it.
	var names []string
	seen := map[string]bool{}
	for _, name := range strings.Split(*machineNames, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return fmt.Errorf("-machines has an empty entry (got %q)", *machineNames)
		}
		if seen[name] {
			return fmt.Errorf("-machines lists %q twice", name)
		}
		seen[name] = true
		if _, err := machine.ByName(name); err != nil {
			return err
		}
		names = append(names, name)
	}
	var entries []guide.FleetEntry
	for _, name := range names {
		d, spec, err := loadOrGenerate("", name, *seed, *genSize)
		if err != nil {
			return err
		}
		adv, err := guide.NewAdvisor(buildGB(*trees, *depth, *seed), d)
		if err != nil {
			return err
		}
		entries = append(entries, guide.FleetEntry{Machine: spec.Name, Advisor: adv})
		fmt.Printf("Trained %s on %d %s records (grid %d nodes × %d tiles)\n",
			adv.Model.Name(), d.Len(), spec.Name, len(adv.Grid.Nodes), len(adv.Grid.TileSizes))
	}
	meta := guide.BundleMeta{
		TrainedAt: now().UTC().Format(time.RFC3339),
		Source:    fmt.Sprintf("simulated seed=%d trees=%d depth=%d", *seed, *trees, *depth),
	}
	if err := guide.SaveBundle(*out, entries, meta); err != nil {
		return err
	}
	fmt.Printf("Fleet bundle (%d machines) written to %s\n", len(entries), *out)
	return nil
}
