package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parcost/internal/ccsd"
	"parcost/internal/dataset"
	"parcost/internal/fleetproxy"
	"parcost/internal/guide"
	"parcost/internal/machine"
)

// frontendFactory exposes a serve handler over HTTP: either directly, or
// through a one-backend `parcost proxy` in front of it. Running every wire
// battery through both makes the serve tests double as proxy conformance
// tests — the proxy must be invisible for a healthy single backend.
type frontendFactory func(t *testing.T, h http.Handler) (baseURL string)

func directFrontend(t *testing.T, h http.Handler) string {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv.URL
}

func proxyFrontend(t *testing.T, h http.Handler) string {
	t.Helper()
	backend := httptest.NewServer(h)
	t.Cleanup(backend.Close)
	p, err := fleetproxy.New(fleetproxy.Config{Backends: []string{backend.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	front := httptest.NewServer(p.Handler())
	t.Cleanup(front.Close)
	return front.URL
}

func forEachFrontend(t *testing.T, fn func(t *testing.T, newFrontend frontendFactory)) {
	t.Run("direct", func(t *testing.T) { fn(t, directFrontend) })
	t.Run("proxy", func(t *testing.T) { fn(t, proxyFrontend) })
}

// testAdvisor trains a small advisor over simulated data for one machine.
func testAdvisor(t testing.TB, spec machine.Spec) (*guide.Advisor, guide.Oracle) {
	t.Helper()
	d := ccsd.Generate(spec, ccsd.GenConfig{
		Problems: []dataset.Problem{{O: 99, V: 718}, {O: 146, V: 1096}, {O: 180, V: 1070}},
		Grid: dataset.Grid{
			Nodes:     []int{5, 15, 30, 50, 100, 200, 400},
			TileSizes: []int{40, 60, 80, 100},
		},
		Seed: 1,
	})
	adv, err := guide.NewAdvisor(buildGB(60, 6, 1), d)
	if err != nil {
		t.Fatal(err)
	}
	return adv, guide.NewSimOracle(spec)
}

// testRouter builds a one-shard aurora router, the single-machine serving
// shape.
func testRouter(t testing.TB) (*guide.Router, *guide.Advisor, guide.Oracle) {
	t.Helper()
	adv, oracle := testAdvisor(t, machine.Aurora())
	r := guide.NewRouter()
	if err := r.AddShard("aurora", adv, guide.WithOracle(oracle)); err != nil {
		t.Fatal(err)
	}
	return r, adv, oracle
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestServeEndToEnd drives the HTTP API of a one-shard fleet — directly and
// through a one-backend proxy — and asserts every answer matches the
// in-process advisor exactly.
func TestServeEndToEnd(t *testing.T) {
	forEachFrontend(t, testServeEndToEnd)
}

func testServeEndToEnd(t *testing.T, newFrontend frontendFactory) {
	router, adv, oracle := testRouter(t)
	base := newFrontend(t, newServeHandler(router, nil))

	// healthz
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health guide.HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || len(health.Machines) != 1 || health.Machines[0].Machine != "aurora" {
		t.Fatalf("health = %+v", health)
	}

	// recommend, both objectives, vs in-process advisor. The machine field
	// is OMITTED: a one-shard fleet must default to its only machine.
	for _, objName := range []string{"stq", "bq"} {
		obj := guide.ShortestTime
		if objName == "bq" {
			obj = guide.Budget
		}
		p := dataset.Problem{O: 146, V: 1096}
		want, err := adv.Recommend(p, obj, oracle)
		if err != nil {
			t.Fatal(err)
		}
		resp, body := postJSON(t, base+"/v1/recommend", recommendRequest{O: p.O, V: p.V, Objective: objName})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recommend %s: status %d body %s", objName, resp.StatusCode, body)
		}
		var rec recommendResponse
		if err := json.Unmarshal(body, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Machine != "aurora" {
			t.Fatalf("defaulted machine echoed as %q", rec.Machine)
		}
		if rec.Nodes != want.Config.Nodes || rec.Tile != want.Config.TileSize {
			t.Fatalf("HTTP %s recommends nodes=%d tile=%d, in-process nodes=%d tile=%d",
				objName, rec.Nodes, rec.Tile, want.Config.Nodes, want.Config.TileSize)
		}
		if rec.PredSeconds != want.PredTime || rec.PredValue != want.PredValue {
			t.Fatalf("HTTP %s predictions %v/%v, in-process %v/%v",
				objName, rec.PredSeconds, rec.PredValue, want.PredTime, want.PredValue)
		}
	}

	// healthz again: the two sweeps must show up per-shard AND in the
	// aggregate with a consistent min ≤ mean ≤ max.
	resp, err = http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, block := range []guide.CacheHealth{health.Machines[0].CacheHealth, health.Aggregate} {
		if block.Sweeps != 2 || block.CacheMisses != 2 {
			t.Fatalf("healthz after 2 sweeps: %+v", block)
		}
		if !(block.SweepMinMs > 0 && block.SweepMinMs <= block.SweepMeanMs && block.SweepMeanMs <= block.SweepMaxMs) {
			t.Fatalf("healthz sweep timings inconsistent: %+v", block)
		}
	}

	// predict vs in-process model
	cfg := dataset.Config{O: 99, V: 718, Nodes: 100, TileSize: 80}
	wantSecs := adv.Model.Predict([][]float64{cfg.Features()})[0]
	resp2, body := postJSON(t, base+"/v1/predict", predictRequest{O: cfg.O, V: cfg.V, Nodes: cfg.Nodes, Tile: cfg.TileSize})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d body %s", resp2.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.PredSeconds != wantSecs || pr.Machine != "aurora" {
		t.Fatalf("HTTP predict %+v, in-process %v", pr, wantSecs)
	}

	// batch: order preserved, answers match the advisor
	batch := batchRequest{Queries: []recommendRequest{
		{O: 99, V: 718, Objective: "stq"},
		{O: 146, V: 1096, Objective: "bq"},
	}}
	resp3, body := postJSON(t, base+"/v1/batch", batch)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d body %s", resp3.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 {
		t.Fatalf("batch returned %d results", len(br.Results))
	}
	for i, q := range batch.Queries {
		obj := guide.ShortestTime
		if q.Objective == "bq" {
			obj = guide.Budget
		}
		want, err := adv.Recommend(dataset.Problem{O: q.O, V: q.V}, obj, oracle)
		if err != nil {
			t.Fatal(err)
		}
		got := br.Results[i]
		if got.Error != "" || got.Result == nil {
			t.Fatalf("batch result %d: %+v", i, got)
		}
		if got.Result.Nodes != want.Config.Nodes || got.Result.Tile != want.Config.TileSize {
			t.Fatalf("batch result %d diverges from in-process advisor", i)
		}
	}
}

// TestServeBackCompatSingleArtifact is the backward-compatibility acceptance
// criterion: a PR 3/PR 4-era single-advisor artifact loads into a one-shard
// Router, and /v1/recommend WITHOUT a machine field answers bit-identically
// to the pre-refactor path (the advisor queried directly in process).
func TestServeBackCompatSingleArtifact(t *testing.T) {
	forEachFrontend(t, testServeBackCompatSingleArtifact)
}

func testServeBackCompatSingleArtifact(t *testing.T, newFrontend frontendFactory) {
	adv, oracle := testAdvisor(t, machine.Aurora())
	path := filepath.Join(t.TempDir(), "advisor.json")
	// The single-advisor format is unchanged since PR 3: SaveAdvisor writes
	// exactly what `parcost train -machine aurora` wrote before fleets.
	if err := guide.SaveAdvisor(path, adv, "aurora"); err != nil {
		t.Fatal(err)
	}

	entries, _, err := guide.LoadFleet(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Machine != "aurora" {
		t.Fatalf("single artifact loaded as %+v", entries)
	}
	router := guide.NewRouter()
	if err := router.AddShard(entries[0].Machine, entries[0].Advisor, guide.WithOracle(oracle)); err != nil {
		t.Fatal(err)
	}
	base := newFrontend(t, newServeHandler(router, nil))

	for _, objName := range []string{"stq", "bq"} {
		obj := guide.ShortestTime
		if objName == "bq" {
			obj = guide.Budget
		}
		for _, p := range []dataset.Problem{{O: 146, V: 1096}, {O: 99, V: 718}} {
			want, err := adv.Recommend(p, obj, oracle)
			if err != nil {
				t.Fatal(err)
			}
			resp, body := postJSON(t, base+"/v1/recommend",
				recommendRequest{O: p.O, V: p.V, Objective: objName}) // no machine field
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d body %s", resp.StatusCode, body)
			}
			var rec recommendResponse
			if err := json.Unmarshal(body, &rec); err != nil {
				t.Fatal(err)
			}
			// Bit-identical: the exact floats the pre-refactor path produced.
			if rec.Nodes != want.Config.Nodes || rec.Tile != want.Config.TileSize ||
				rec.PredSeconds != want.PredTime || rec.PredValue != want.PredValue {
				t.Fatalf("backcompat %v/%s: HTTP %+v, pre-refactor %+v", p, objName, rec, want)
			}
		}
	}
}

// TestServeFleetEndToEnd is the fleet acceptance criterion:
// train -machines Aurora,Frontier → one bundle → one serve process answers
// routed queries for both machines, with per-shard stats in /v1/healthz and
// per-endpoint latency histograms.
func TestServeFleetEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fleet.json")
	if err := runTrain([]string{"-machines", "aurora,frontier", "-gensize", "300", "-trees", "25", "-depth", "4", "-seed", "3", "-out", out}); err != nil {
		t.Fatal(err)
	}
	entries, meta, err := guide.LoadFleet(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Machine != "aurora" || entries[1].Machine != "frontier" {
		t.Fatalf("fleet entries %+v", entries)
	}
	if meta.TrainedAt == "" || !strings.Contains(meta.Source, "seed=3") {
		t.Fatalf("bundle meta %+v", meta)
	}

	// Each fleet shard must predict identically to a single-machine train
	// run with the same flags (the -machines path shares loadOrGenerate and
	// buildGB with the single path, pinned here for aurora).
	p := dataset.Problem{O: 146, V: 1096}
	single := filepath.Join(t.TempDir(), "aurora.json")
	if err := runTrain([]string{"-machine", "aurora", "-gensize", "300", "-trees", "25", "-depth", "4", "-seed", "3", "-out", single}); err != nil {
		t.Fatal(err)
	}
	singleAdv, _, err := guide.LoadAdvisor(single)
	if err != nil {
		t.Fatal(err)
	}
	wantSingle, err := singleAdv.Recommend(p, guide.ShortestTime, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotFleet, err := entries[0].Advisor.Recommend(p, guide.ShortestTime, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotFleet != wantSingle {
		t.Fatalf("aurora fleet shard diverges from single train: %+v vs %+v", gotFleet, wantSingle)
	}

	// Corrupted bundle entries (any shard) are rejected at load — spot-check
	// through the CLI-visible LoadFleet path with whole-file tampering; the
	// per-entry cases are pinned in internal/guide.
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(raw, []byte(`"machine":"aurora"`), []byte(`"machine":"borealis"`), 1)
	if bytes.Equal(tampered, raw) {
		t.Fatal("tamper target not found in bundle")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := guide.LoadFleet(bad); err == nil {
		t.Fatal("tampered bundle accepted by LoadFleet")
	}

	// The wire battery runs once per frontend (direct and proxied) over a
	// fresh router each time so the healthz stats assertions stay exact.
	forEachFrontend(t, func(t *testing.T, newFrontend frontendFactory) {
		testServeFleetWire(t, newFrontend, entries)
	})
}

func testServeFleetWire(t *testing.T, newFrontend frontendFactory, entries []guide.FleetEntry) {
	router := guide.NewRouter()
	oracles := map[string]guide.Oracle{}
	for _, e := range entries {
		spec, err := machine.ByName(e.Machine)
		if err != nil {
			t.Fatal(err)
		}
		oracles[e.Machine] = guide.NewSimOracle(spec)
		if err := router.AddShard(e.Machine, e.Advisor, guide.WithOracle(oracles[e.Machine])); err != nil {
			t.Fatal(err)
		}
	}
	base := newFrontend(t, newServeHandler(router, nil))

	// Routed queries for both machines from one process; answers must match
	// each machine's own advisor.
	p := dataset.Problem{O: 146, V: 1096}
	for _, e := range entries {
		want, err := e.Advisor.Recommend(p, guide.ShortestTime, oracles[e.Machine])
		if err != nil {
			t.Fatal(err)
		}
		resp, body := postJSON(t, base+"/v1/recommend",
			recommendRequest{Machine: e.Machine, O: p.O, V: p.V, Objective: "stq"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recommend %s: status %d body %s", e.Machine, resp.StatusCode, body)
		}
		var rec recommendResponse
		if err := json.Unmarshal(body, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Machine != e.Machine || rec.Nodes != want.Config.Nodes || rec.Tile != want.Config.TileSize ||
			rec.PredSeconds != want.PredTime {
			t.Fatalf("%s routed answer %+v, in-process %+v", e.Machine, rec, want)
		}
	}

	// The two shards must answer DIFFERENTLY (different machines, different
	// models) — otherwise routing could be silently collapsed.
	ra, _ := recommendOne(context.Background(), router, recommendRequest{Machine: "aurora", O: p.O, V: p.V, Objective: "stq"})
	rf, _ := recommendOne(context.Background(), router, recommendRequest{Machine: "frontier", O: p.O, V: p.V, Objective: "stq"})
	if ra.PredSeconds == rf.PredSeconds {
		t.Fatal("aurora and frontier shards returned identical predictions; routing suspect")
	}

	// A mixed-machine batch routes each entry to its shard; an entry naming
	// an unknown machine fails alone without failing the batch.
	batch := batchRequest{Queries: []recommendRequest{
		{Machine: "aurora", O: 99, V: 718, Objective: "stq"},
		{Machine: "frontier", O: 99, V: 718, Objective: "bq"},
		{Machine: "perlmutter", O: 99, V: 718, Objective: "stq"},
	}}
	respB, body := postJSON(t, base+"/v1/batch", batch)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d body %s", respB.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Results[0].Error != "" || br.Results[0].Result.Machine != "aurora" {
		t.Fatalf("batch aurora entry %+v", br.Results[0])
	}
	if br.Results[1].Error != "" || br.Results[1].Result.Machine != "frontier" {
		t.Fatalf("batch frontier entry %+v", br.Results[1])
	}
	if br.Results[2].Error == "" || !strings.Contains(br.Results[2].Error, "perlmutter") {
		t.Fatalf("batch unknown-machine entry %+v", br.Results[2])
	}

	// An un-machined recommend against a two-shard fleet is a 400.
	respU, body := postJSON(t, base+"/v1/recommend", recommendRequest{O: 99, V: 718, Objective: "stq"})
	if respU.StatusCode != http.StatusBadRequest {
		t.Fatalf("machine-less query on a 2-shard fleet: status %d body %s", respU.StatusCode, body)
	}

	// healthz: per-shard stats visible for both machines, plus per-endpoint
	// latency histograms for the routes exercised above (behind the proxy,
	// the histograms are the proxy's own route timings — same schema).
	respH, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health guide.HealthReport
	if err := json.NewDecoder(respH.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	respH.Body.Close()
	if len(health.Machines) != 2 {
		t.Fatalf("healthz lists %d shards", len(health.Machines))
	}
	perShard := map[string]guide.ShardHealth{}
	for _, sh := range health.Machines {
		perShard[sh.Machine] = sh
	}
	if perShard["aurora"].Sweeps == 0 || perShard["frontier"].Sweeps == 0 {
		t.Fatalf("per-shard sweeps missing: %+v", perShard)
	}
	if health.Aggregate.Sweeps != perShard["aurora"].Sweeps+perShard["frontier"].Sweeps {
		t.Fatalf("aggregate sweeps %d != shard sum", health.Aggregate.Sweeps)
	}
	for _, route := range []string{"recommend", "batch"} {
		hist, ok := health.Latency[route]
		if !ok || hist.Count == 0 {
			t.Fatalf("latency histogram for %s missing or empty: %+v", route, health.Latency)
		}
		if len(hist.Buckets) == 0 || hist.MeanMs <= 0 {
			t.Fatalf("latency %s has no buckets: %+v", route, hist)
		}
		// Cumulative buckets are monotone and end at or below the count.
		var prev uint64
		for _, bkt := range hist.Buckets {
			if bkt.Count < prev {
				t.Fatalf("latency %s buckets not cumulative: %+v", route, hist.Buckets)
			}
			prev = bkt.Count
		}
		if prev > hist.Count {
			t.Fatalf("latency %s cumulative %d exceeds count %d", route, prev, hist.Count)
		}
	}
}

// TestServeWarmSetAcrossRestart drives the Router warm-set API the way
// runServe does: serve traffic, save on shutdown, pre-sweep on next boot.
func TestServeWarmSetAcrossRestart(t *testing.T) {
	router, adv, oracle := testRouter(t)
	srv := httptest.NewServer(newServeHandler(router, nil))
	for _, p := range []dataset.Problem{{O: 99, V: 718}, {O: 146, V: 1096}} {
		resp, body := postJSON(t, srv.URL+"/v1/recommend", recommendRequest{O: p.O, V: p.V, Objective: "stq"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recommend: %d %s", resp.StatusCode, body)
		}
	}
	srv.Close()
	warm := filepath.Join(t.TempDir(), "warm.json")
	if err := router.SaveWarmSet(warm, 0); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh router over the same advisor, warm from file.
	restarted := guide.NewRouter()
	if err := restarted.AddShard("aurora", adv, guide.WithOracle(oracle)); err != nil {
		t.Fatal(err)
	}
	warmed, err := restarted.LoadWarmSet(warm)
	if err != nil || warmed != 2 {
		t.Fatalf("LoadWarmSet = %d, %v; want 2, nil", warmed, err)
	}
	srv2 := httptest.NewServer(newServeHandler(restarted, nil))
	defer srv2.Close()
	if resp, _ := postJSON(t, srv2.URL+"/v1/recommend", recommendRequest{O: 99, V: 718, Objective: "stq"}); resp.StatusCode != http.StatusOK {
		t.Fatal("warmed query failed")
	}
	st := restarted.AggregateStats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("post-restart stats %+v: the warmed keys should hit", st)
	}
}

// TestServeGracefulShutdown pins the drain path: cancelling the serve
// context (what SIGINT/SIGTERM do in runServe) lets an in-flight request
// complete, runs the drain hook, and returns nil.
func TestServeGracefulShutdown(t *testing.T) {
	router, _, _ := testRouter(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	handler := newServeHandler(router, nil)
	started := make(chan struct{})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		time.Sleep(300 * time.Millisecond) // in-flight work Shutdown must wait for
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, "drained")
	})
	mux.Handle("/", handler)
	srv := &http.Server{Handler: mux}

	ctx, cancel := context.WithCancel(context.Background())
	drained := false
	done := make(chan error, 1)
	go func() {
		done <- serveUntilShutdown(ctx, srv, ln, 5*time.Second, func() error { drained = true; return nil })
	}()

	reqDone := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			reqDone <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		reqDone <- buf.String()
	}()
	<-started
	cancel() // SIGINT

	select {
	case body := <-reqDone:
		if body != "drained" {
			t.Fatalf("in-flight request during shutdown: %q", body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveUntilShutdown never returned")
	}
	if !drained {
		t.Fatal("drain hook did not run")
	}
	// The listener is closed: new connections are refused.
	if _, err := http.Get("http://" + ln.Addr().String() + "/v1/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestServeRejectsBadRequests covers the validation layer of every endpoint —
// semantic 400s, malformed-JSON 400s, and oversized-body 413s — directly and
// through the proxy (which must relay 4xx verbatim, never retry them).
func TestServeRejectsBadRequests(t *testing.T) {
	forEachFrontend(t, testServeRejectsBadRequests)
}

func testServeRejectsBadRequests(t *testing.T, newFrontend frontendFactory) {
	router, _, _ := testRouter(t)
	base := newFrontend(t, newServeHandler(router, nil))

	cases := []struct {
		name string
		path string
		body any
	}{
		{"zero o/v", "/v1/recommend", recommendRequest{O: 0, V: 0, Objective: "stq"}},
		{"negative o", "/v1/recommend", recommendRequest{O: -5, V: 100, Objective: "stq"}},
		{"bad objective", "/v1/recommend", recommendRequest{O: 99, V: 718, Objective: "fastest"}},
		{"unknown machine", "/v1/recommend", recommendRequest{Machine: "perlmutter", O: 99, V: 718, Objective: "stq"}},
		{"zero nodes", "/v1/predict", predictRequest{O: 99, V: 718, Nodes: 0, Tile: 80}},
		{"zero tile", "/v1/predict", predictRequest{O: 99, V: 718, Nodes: 100, Tile: 0}},
		{"predict unknown machine", "/v1/predict", predictRequest{Machine: "perlmutter", O: 99, V: 718, Nodes: 100, Tile: 80}},
		{"empty batch", "/v1/batch", batchRequest{}},
		{"batch bad entry", "/v1/batch", batchRequest{Queries: []recommendRequest{{O: 0, V: 1, Objective: "stq"}}}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, base+tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (body %s), want 400", tc.name, resp.StatusCode, body)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q not structured", tc.name, body)
		}
	}

	// Oversized and malformed bodies on every POST endpoint. The oversized
	// payload is valid JSON past the 1 MiB cap, so only MaxBytesReader can be
	// the thing rejecting it; the answer must be a structured 413 naming the
	// limit, not a hang or connection drop.
	oversized := `{"pad":"` + strings.Repeat("x", maxRequestBytes+1024) + `"}`
	for _, path := range []string{"/v1/recommend", "/v1/predict", "/v1/batch"} {
		wire := []struct {
			name       string
			payload    string
			wantStatus int
			wantInBody string
		}{
			{"oversized body", oversized, http.StatusRequestEntityTooLarge, "exceeds"},
			{"malformed JSON", "{nope", http.StatusBadRequest, "malformed"},
			{"empty body", "", http.StatusBadRequest, ""},
		}
		for _, tc := range wire {
			resp, err := http.Post(base+path, "application/json", strings.NewReader(tc.payload))
			if err != nil {
				t.Fatalf("%s %s: %v", path, tc.name, err)
			}
			var buf bytes.Buffer
			_, _ = buf.ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("%s %s: status %d (body %.100s), want %d", path, tc.name, resp.StatusCode, buf.String(), tc.wantStatus)
				continue
			}
			var er errorResponse
			if err := json.Unmarshal(buf.Bytes(), &er); err != nil || er.Error == "" {
				t.Errorf("%s %s: error body %.100q not structured", path, tc.name, buf.String())
				continue
			}
			if tc.wantInBody != "" && !strings.Contains(er.Error, tc.wantInBody) {
				t.Errorf("%s %s: error %q does not mention %q", path, tc.name, er.Error, tc.wantInBody)
			}
		}
	}
}

// TestServeDrainSurfacesWarmSetFailure is the drain-path failure contract: a
// warm-set save that cannot be written must name the path and become the exit
// status of serveUntilShutdown — never a silent loss.
func TestServeDrainSurfacesWarmSetFailure(t *testing.T) {
	router, _, _ := testRouter(t)
	// Warm one key so there is something to save.
	srv := httptest.NewServer(newServeHandler(router, nil))
	if resp, body := postJSON(t, srv.URL+"/v1/recommend", recommendRequest{O: 99, V: 718, Objective: "stq"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup recommend: %d %s", resp.StatusCode, body)
	}
	srv.Close()

	// A directory is unwritable as a file: SaveWarmSet must fail.
	unwritable := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- serveUntilShutdown(ctx, &http.Server{Handler: newServeHandler(router, nil)}, ln,
			5*time.Second, saveWarmSetOnDrain(router, unwritable))
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("unwritable warm-set path did not surface in exit status")
		}
		if !strings.Contains(err.Error(), unwritable) {
			t.Fatalf("drain error %q does not name the warm-set path %q", err, unwritable)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveUntilShutdown never returned")
	}

	// The happy path stays nil: a writable path saves and exits clean.
	writable := filepath.Join(t.TempDir(), "warm.json")
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	done2 := make(chan error, 1)
	go func() {
		done2 <- serveUntilShutdown(ctx2, &http.Server{Handler: newServeHandler(router, nil)}, ln2,
			5*time.Second, saveWarmSetOnDrain(router, writable))
	}()
	cancel2()
	if err := <-done2; err != nil {
		t.Fatalf("writable warm-set drain returned %v", err)
	}
	if _, err := os.Stat(writable); err != nil {
		t.Fatalf("warm set not written on clean drain: %v", err)
	}
}

// TestTrainArtifactMatchesRefit is the CLI acceptance criterion: a model
// trained by `parcost train` and loaded from its artifact recommends
// identically to the refit-in-process path with the same flags.
func TestTrainArtifactMatchesRefit(t *testing.T) {
	out := filepath.Join(t.TempDir(), "model.json")
	args := []string{"-machine", "aurora", "-gensize", "400", "-trees", "40", "-depth", "5", "-seed", "3", "-out", out}
	if err := runTrain(args); err != nil {
		t.Fatal(err)
	}

	loaded, machineName, err := guide.LoadAdvisor(out)
	if err != nil {
		t.Fatal(err)
	}
	if machineName != "aurora" {
		t.Fatalf("artifact machine %q", machineName)
	}

	// Refit in process exactly as `parcost stq -trees 40 -depth 5 -seed 3`
	// would without -model.
	d, spec, err := loadOrGenerate("", "aurora", 3, 400)
	if err != nil {
		t.Fatal(err)
	}
	refit, err := guide.NewAdvisor(buildGB(40, 5, 3), d)
	if err != nil {
		t.Fatal(err)
	}
	oracle := guide.NewSimOracle(spec)
	for _, obj := range []guide.Objective{guide.ShortestTime, guide.Budget} {
		for _, p := range []dataset.Problem{{O: 146, V: 1096}, {O: 99, V: 718}} {
			want, err := refit.Recommend(p, obj, oracle)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.Recommend(p, obj, oracle)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("artifact-loaded %v/%v = %+v, refit = %+v", p, obj, got, want)
			}
		}
	}
}

// TestQueryFlagValidation pins the CLI's rejection of nonsense problems:
// zero/negative O, V, nodes, tile, trees, or depth must error out instead
// of silently sweeping a meaningless configuration.
func TestQueryFlagValidation(t *testing.T) {
	cases := []struct {
		name        string
		args        []string
		withConfig  bool
		needProblem bool
		wantErr     string
	}{
		{"missing o/v", []string{}, false, true, "-o and -v"},
		{"zero o/v", []string{"-o", "0", "-v", "0"}, false, true, "-o and -v"},
		{"negative o", []string{"-o", "-146", "-v", "1096"}, false, true, "-o and -v"},
		{"zero v only", []string{"-o", "146", "-v", "0"}, false, true, "-o and -v"},
		{"predict missing nodes/tile", []string{"-o", "146", "-v", "1096"}, true, true, "-nodes and -tile"},
		{"predict zero nodes", []string{"-o", "146", "-v", "1096", "-nodes", "0", "-tile", "80"}, true, true, "-nodes and -tile"},
		{"predict negative tile", []string{"-o", "146", "-v", "1096", "-nodes", "300", "-tile", "-80"}, true, true, "-nodes and -tile"},
		{"zero trees", []string{"-o", "146", "-v", "1096", "-trees", "0"}, false, true, "-trees and -depth"},
		{"negative depth", []string{"-o", "146", "-v", "1096", "-depth", "-1"}, false, true, "-trees and -depth"},
		{"model with machine", []string{"-model", "m.json", "-machine", "frontier", "-o", "146", "-v", "1096"}, false, true, "no effect with -model"},
		{"model with trees", []string{"-model", "m.json", "-trees", "100", "-o", "146", "-v", "1096"}, false, true, "no effect with -model"},
		{"model with seed", []string{"-model", "m.json", "-seed", "9", "-o", "146", "-v", "1096"}, false, true, "no effect with -model"},
	}
	for _, tc := range cases {
		_, err := parseQueryFlags(tc.args, tc.withConfig, tc.needProblem)
		if err == nil {
			t.Errorf("%s: expected error, got none", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}

	// Valid invocations parse.
	if _, err := parseQueryFlags([]string{"-o", "146", "-v", "1096"}, false, true); err != nil {
		t.Errorf("valid stq flags rejected: %v", err)
	}
	if _, err := parseQueryFlags([]string{"-o", "146", "-v", "1096", "-nodes", "300", "-tile", "80"}, true, true); err != nil {
		t.Errorf("valid predict flags rejected: %v", err)
	}
	// eval does not need a problem size.
	if _, err := parseQueryFlags(nil, false, false); err != nil {
		t.Errorf("eval flags rejected: %v", err)
	}
	// -model alone (without training flags) is the supported fast path.
	if _, err := parseQueryFlags([]string{"-model", "m.json", "-o", "146", "-v", "1096"}, false, true); err != nil {
		t.Errorf("valid -model flags rejected: %v", err)
	}
}

func TestTrainFlagValidation(t *testing.T) {
	if err := runTrain([]string{}); err == nil || !strings.Contains(err.Error(), "-out") {
		t.Errorf("train without -out: %v", err)
	}
	if err := runTrain([]string{"-out", "x.json", "-trees", "0"}); err == nil || !strings.Contains(err.Error(), "-trees") {
		t.Errorf("train with zero trees: %v", err)
	}
	// Fleet-flag conflicts.
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"machines with machine", []string{"-out", "x.json", "-machines", "aurora,frontier", "-machine", "aurora"}, "-machine"},
		{"machines with data", []string{"-out", "x.json", "-machines", "aurora,frontier", "-data", "d.csv"}, "-data"},
		{"machines empty entry", []string{"-out", "x.json", "-machines", "aurora,,frontier"}, "empty"},
		{"machines duplicate", []string{"-out", "x.json", "-machines", "aurora,aurora"}, "twice"},
		{"machines duplicate after trim", []string{"-out", "x.json", "-machines", "aurora, aurora"}, "twice"},
		{"machines unknown", []string{"-out", "x.json", "-machines", "aurora,perlmutter"}, "perlmutter"},
		{"zero gensize", []string{"-out", "x.json", "-gensize", "0"}, "-gensize"},
	} {
		if err := runTrain(tc.args); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestServeFlagValidation(t *testing.T) {
	if err := runServe([]string{}); err == nil || !strings.Contains(err.Error(), "-model") {
		t.Errorf("serve without -model: %v", err)
	}
	if err := runServe([]string{"-model", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("serve with missing artifact should error")
	}
	if err := runServe([]string{"-model", "m.json", "-drain", "0s"}); err == nil || !strings.Contains(err.Error(), "-drain") {
		t.Errorf("serve with zero drain: %v", err)
	}
}
