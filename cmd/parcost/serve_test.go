package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"parcost/internal/ccsd"
	"parcost/internal/dataset"
	"parcost/internal/guide"
	"parcost/internal/machine"
)

// testService builds a small advisor + service pair over simulated data.
func testService(t *testing.T) (*guide.Service, *guide.Advisor, guide.Oracle) {
	t.Helper()
	spec := machine.Aurora()
	d := ccsd.Generate(spec, ccsd.GenConfig{
		Problems: []dataset.Problem{{O: 99, V: 718}, {O: 146, V: 1096}, {O: 180, V: 1070}},
		Grid: dataset.Grid{
			Nodes:     []int{5, 15, 30, 50, 100, 200, 400},
			TileSizes: []int{40, 60, 80, 100},
		},
		Seed: 1,
	})
	adv, err := guide.NewAdvisor(buildGB(60, 6, 1), d)
	if err != nil {
		t.Fatal(err)
	}
	oracle := guide.NewSimOracle(spec)
	svc, err := guide.NewService(adv, guide.WithOracle(oracle))
	if err != nil {
		t.Fatal(err)
	}
	return svc, adv, oracle
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestServeEndToEnd drives the HTTP API and asserts every answer matches
// the in-process advisor exactly.
func TestServeEndToEnd(t *testing.T) {
	svc, adv, oracle := testService(t)
	srv := httptest.NewServer(newServeHandler(svc, adv.Model.Name(), "aurora"))
	defer srv.Close()

	// healthz
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Machine != "aurora" {
		t.Fatalf("health = %+v", health)
	}

	// recommend, both objectives, vs in-process advisor
	for _, objName := range []string{"stq", "bq"} {
		obj := guide.ShortestTime
		if objName == "bq" {
			obj = guide.Budget
		}
		p := dataset.Problem{O: 146, V: 1096}
		want, err := adv.Recommend(p, obj, oracle)
		if err != nil {
			t.Fatal(err)
		}
		resp, body := postJSON(t, srv.URL+"/v1/recommend", recommendRequest{O: p.O, V: p.V, Objective: objName})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recommend %s: status %d body %s", objName, resp.StatusCode, body)
		}
		var rec recommendResponse
		if err := json.Unmarshal(body, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Nodes != want.Config.Nodes || rec.Tile != want.Config.TileSize {
			t.Fatalf("HTTP %s recommends nodes=%d tile=%d, in-process nodes=%d tile=%d",
				objName, rec.Nodes, rec.Tile, want.Config.Nodes, want.Config.TileSize)
		}
		if rec.PredSeconds != want.PredTime || rec.PredValue != want.PredValue {
			t.Fatalf("HTTP %s predictions %v/%v, in-process %v/%v",
				objName, rec.PredSeconds, rec.PredValue, want.PredTime, want.PredValue)
		}
	}

	// healthz again: the two sweeps above must show up in the observability
	// fields with a consistent min ≤ mean ≤ max.
	resp, err = http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Sweeps != 2 || health.CacheMisses != 2 {
		t.Fatalf("healthz after 2 sweeps: %+v", health)
	}
	if !(health.SweepMinMs > 0 && health.SweepMinMs <= health.SweepMeanMs && health.SweepMeanMs <= health.SweepMaxMs) {
		t.Fatalf("healthz sweep timings inconsistent: %+v", health)
	}

	// predict vs in-process model
	cfg := dataset.Config{O: 99, V: 718, Nodes: 100, TileSize: 80}
	wantSecs := adv.Model.Predict([][]float64{cfg.Features()})[0]
	resp2, body := postJSON(t, srv.URL+"/v1/predict", predictRequest{O: cfg.O, V: cfg.V, Nodes: cfg.Nodes, Tile: cfg.TileSize})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d body %s", resp2.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.PredSeconds != wantSecs {
		t.Fatalf("HTTP predict %v, in-process %v", pr.PredSeconds, wantSecs)
	}

	// batch: order preserved, answers match the advisor
	batch := batchRequest{Queries: []recommendRequest{
		{O: 99, V: 718, Objective: "stq"},
		{O: 146, V: 1096, Objective: "bq"},
	}}
	resp3, body := postJSON(t, srv.URL+"/v1/batch", batch)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d body %s", resp3.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 {
		t.Fatalf("batch returned %d results", len(br.Results))
	}
	for i, q := range batch.Queries {
		obj := guide.ShortestTime
		if q.Objective == "bq" {
			obj = guide.Budget
		}
		want, err := adv.Recommend(dataset.Problem{O: q.O, V: q.V}, obj, oracle)
		if err != nil {
			t.Fatal(err)
		}
		got := br.Results[i]
		if got.Error != "" || got.Result == nil {
			t.Fatalf("batch result %d: %+v", i, got)
		}
		if got.Result.Nodes != want.Config.Nodes || got.Result.Tile != want.Config.TileSize {
			t.Fatalf("batch result %d diverges from in-process advisor", i)
		}
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	svc, adv, _ := testService(t)
	srv := httptest.NewServer(newServeHandler(svc, adv.Model.Name(), "aurora"))
	defer srv.Close()

	cases := []struct {
		name string
		path string
		body any
	}{
		{"zero o/v", "/v1/recommend", recommendRequest{O: 0, V: 0, Objective: "stq"}},
		{"negative o", "/v1/recommend", recommendRequest{O: -5, V: 100, Objective: "stq"}},
		{"bad objective", "/v1/recommend", recommendRequest{O: 99, V: 718, Objective: "fastest"}},
		{"zero nodes", "/v1/predict", predictRequest{O: 99, V: 718, Nodes: 0, Tile: 80}},
		{"zero tile", "/v1/predict", predictRequest{O: 99, V: 718, Nodes: 100, Tile: 0}},
		{"empty batch", "/v1/batch", batchRequest{}},
		{"batch bad entry", "/v1/batch", batchRequest{Queries: []recommendRequest{{O: 0, V: 1, Objective: "stq"}}}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, srv.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (body %s), want 400", tc.name, resp.StatusCode, body)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q not structured", tc.name, body)
		}
	}

	// Malformed JSON body.
	resp, err := http.Post(srv.URL+"/v1/recommend", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

// TestTrainArtifactMatchesRefit is the CLI acceptance criterion: a model
// trained by `parcost train` and loaded from its artifact recommends
// identically to the refit-in-process path with the same flags.
func TestTrainArtifactMatchesRefit(t *testing.T) {
	out := filepath.Join(t.TempDir(), "model.json")
	args := []string{"-machine", "aurora", "-trees", "40", "-depth", "5", "-seed", "3", "-out", out}
	if err := runTrain(args); err != nil {
		t.Fatal(err)
	}

	loaded, machineName, err := guide.LoadAdvisor(out)
	if err != nil {
		t.Fatal(err)
	}
	if machineName != "aurora" {
		t.Fatalf("artifact machine %q", machineName)
	}

	// Refit in process exactly as `parcost stq -trees 40 -depth 5 -seed 3`
	// would without -model.
	d, spec, err := loadOrGenerate("", "aurora", 3)
	if err != nil {
		t.Fatal(err)
	}
	refit, err := guide.NewAdvisor(buildGB(40, 5, 3), d)
	if err != nil {
		t.Fatal(err)
	}
	oracle := guide.NewSimOracle(spec)
	for _, obj := range []guide.Objective{guide.ShortestTime, guide.Budget} {
		for _, p := range []dataset.Problem{{O: 146, V: 1096}, {O: 99, V: 718}} {
			want, err := refit.Recommend(p, obj, oracle)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.Recommend(p, obj, oracle)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("artifact-loaded %v/%v = %+v, refit = %+v", p, obj, got, want)
			}
		}
	}
}

// TestQueryFlagValidation pins the CLI's rejection of nonsense problems:
// zero/negative O, V, nodes, tile, trees, or depth must error out instead
// of silently sweeping a meaningless configuration.
func TestQueryFlagValidation(t *testing.T) {
	cases := []struct {
		name        string
		args        []string
		withConfig  bool
		needProblem bool
		wantErr     string
	}{
		{"missing o/v", []string{}, false, true, "-o and -v"},
		{"zero o/v", []string{"-o", "0", "-v", "0"}, false, true, "-o and -v"},
		{"negative o", []string{"-o", "-146", "-v", "1096"}, false, true, "-o and -v"},
		{"zero v only", []string{"-o", "146", "-v", "0"}, false, true, "-o and -v"},
		{"predict missing nodes/tile", []string{"-o", "146", "-v", "1096"}, true, true, "-nodes and -tile"},
		{"predict zero nodes", []string{"-o", "146", "-v", "1096", "-nodes", "0", "-tile", "80"}, true, true, "-nodes and -tile"},
		{"predict negative tile", []string{"-o", "146", "-v", "1096", "-nodes", "300", "-tile", "-80"}, true, true, "-nodes and -tile"},
		{"zero trees", []string{"-o", "146", "-v", "1096", "-trees", "0"}, false, true, "-trees and -depth"},
		{"negative depth", []string{"-o", "146", "-v", "1096", "-depth", "-1"}, false, true, "-trees and -depth"},
		{"model with machine", []string{"-model", "m.json", "-machine", "frontier", "-o", "146", "-v", "1096"}, false, true, "no effect with -model"},
		{"model with trees", []string{"-model", "m.json", "-trees", "100", "-o", "146", "-v", "1096"}, false, true, "no effect with -model"},
		{"model with seed", []string{"-model", "m.json", "-seed", "9", "-o", "146", "-v", "1096"}, false, true, "no effect with -model"},
	}
	for _, tc := range cases {
		_, err := parseQueryFlags(tc.args, tc.withConfig, tc.needProblem)
		if err == nil {
			t.Errorf("%s: expected error, got none", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}

	// Valid invocations parse.
	if _, err := parseQueryFlags([]string{"-o", "146", "-v", "1096"}, false, true); err != nil {
		t.Errorf("valid stq flags rejected: %v", err)
	}
	if _, err := parseQueryFlags([]string{"-o", "146", "-v", "1096", "-nodes", "300", "-tile", "80"}, true, true); err != nil {
		t.Errorf("valid predict flags rejected: %v", err)
	}
	// eval does not need a problem size.
	if _, err := parseQueryFlags(nil, false, false); err != nil {
		t.Errorf("eval flags rejected: %v", err)
	}
	// -model alone (without training flags) is the supported fast path.
	if _, err := parseQueryFlags([]string{"-model", "m.json", "-o", "146", "-v", "1096"}, false, true); err != nil {
		t.Errorf("valid -model flags rejected: %v", err)
	}
}

func TestTrainFlagValidation(t *testing.T) {
	if err := runTrain([]string{}); err == nil || !strings.Contains(err.Error(), "-out") {
		t.Errorf("train without -out: %v", err)
	}
	if err := runTrain([]string{"-out", "x.json", "-trees", "0"}); err == nil || !strings.Contains(err.Error(), "-trees") {
		t.Errorf("train with zero trees: %v", err)
	}
}

func TestServeFlagValidation(t *testing.T) {
	if err := runServe([]string{}); err == nil || !strings.Contains(err.Error(), "-model") {
		t.Errorf("serve without -model: %v", err)
	}
	if err := runServe([]string{"-model", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("serve with missing artifact should error")
	}
}
