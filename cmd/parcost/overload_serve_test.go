package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"parcost/internal/admission"
	"parcost/internal/guide"
	"parcost/internal/machine"
)

// postJSONClient is postJSON with overload-control headers attached.
func postJSONClient(t *testing.T, url string, body any, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v) //parcost:bless maprange header set: each key writes its own slot, order-independent
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func decodeBody(t *testing.T, data []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("response %q is not a JSON object: %v", data, err)
	}
	return m
}

// admissionRouter is testRouter with an explicit admission controller and
// extra shard options (TTL, clock) for overload tests.
func admissionRouter(t *testing.T, adm *admission.Controller, opts ...guide.ServiceOption) *guide.Router {
	t.Helper()
	adv, oracle := testAdvisor(t, machine.Aurora())
	r := guide.NewRouter(guide.WithAdmission(adm))
	shardOpts := append([]guide.ServiceOption{guide.WithOracle(oracle)}, opts...)
	if err := r.AddShard("aurora", adv, shardOpts...); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestServeRateLimit pins the per-client shedding contract: a client past
// its token bucket gets 429 with a Retry-After header and a structured
// rate_limited body, other clients are unaffected, and observability
// endpoints are never rate limited.
func TestServeRateLimit(t *testing.T) {
	adm := guide.NewAdmissionController(admission.ControllerConfig{
		Capacity: 2, Rate: 1, Burst: 1,
	})
	router := admissionRouter(t, adm)
	base := directFrontend(t, newServeHandler(router, nil))
	reqBody := map[string]any{"o": 99, "v": 718, "objective": "stq"}

	resp, _ := postJSONClient(t, base+"/v1/recommend", reqBody, map[string]string{"X-Parcost-Client": "greedy"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d, want 200", resp.StatusCode)
	}
	resp, body := postJSONClient(t, base+"/v1/recommend", reqBody, map[string]string{"X-Parcost-Client": "greedy"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("burst-exhausted client: status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	m := decodeBody(t, body)
	if m["reason"] != "rate_limited" {
		t.Fatalf("shed reason = %v, want rate_limited (%s)", m["reason"], body)
	}
	if ra, ok := m["retry_after"].(float64); !ok || ra < 1 {
		t.Fatalf("retry_after = %v, want >= 1 second", m["retry_after"])
	}

	// A different client is a different bucket.
	resp, body = postJSONClient(t, base+"/v1/recommend", reqBody, map[string]string{"X-Parcost-Client": "polite"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unrelated client: status %d, want 200 (%s)", resp.StatusCode, body)
	}

	// healthz and metrics stay reachable for the throttled client (no client
	// header here, but the handler never consults the limiter for them).
	for _, path := range []string{"/v1/healthz", "/metrics"} {
		hr, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("%s while a client is throttled: status %d", path, hr.StatusCode)
		}
	}
}

// TestServeDeadlineHeader pins the deadline-propagation wire contract: a
// malformed X-Parcost-Deadline-Ms is a client error, a generous one is
// honored transparently.
func TestServeDeadlineHeader(t *testing.T) {
	router, _, _ := testRouter(t)
	base := directFrontend(t, newServeHandler(router, nil))
	reqBody := map[string]any{"o": 99, "v": 718, "objective": "stq"}

	for _, bad := range []string{"soon", "-20", "0", "1.5"} {
		resp, body := postJSONClient(t, base+"/v1/recommend", reqBody, map[string]string{"X-Parcost-Deadline-Ms": bad})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("deadline %q: status %d, want 400 (%s)", bad, resp.StatusCode, body)
		}
	}
	resp, body := postJSONClient(t, base+"/v1/recommend", reqBody, map[string]string{"X-Parcost-Deadline-Ms": "30000"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generous deadline: status %d, want 200 (%s)", resp.StatusCode, body)
	}
	if m := decodeBody(t, body); m["nodes"] == nil {
		t.Fatalf("deadline-bounded answer missing recommendation: %s", body)
	}
}

// TestServeBrownout walks the serving tier through a brownout: healthz flips
// to "brownout", an expired cache entry is served stale (200 + degraded
// marker) instead of re-swept, a sweep-requiring miss is shed with 503 and
// reason "brownout" while the slots are busy, batch entries carry the same
// shape per entry, and /metrics exports the admission and brownout families.
func TestServeBrownout(t *testing.T) {
	var (
		mu  sync.Mutex
		cur = time.Now()
	)
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return cur
	}
	advance := func(d time.Duration) {
		mu.Lock()
		cur = cur.Add(d)
		mu.Unlock()
	}
	const target, window = 10 * time.Millisecond, 50 * time.Millisecond
	adm := admission.NewController(admission.ControllerConfig{
		Capacity: 1, BrownoutTarget: target, BrownoutWindow: window, Now: now,
	})
	router := admissionRouter(t, adm, guide.WithTTL(time.Minute), guide.WithClock(now))
	base := directFrontend(t, newServeHandler(router, nil))
	cached := map[string]any{"o": 99, "v": 718, "objective": "stq"}

	// Healthy baseline: a fresh sweep caches the answer, healthz reads ok.
	resp, body := postJSON(t, base+"/v1/recommend", cached)
	if resp.StatusCode != http.StatusOK || strings.Contains(string(body), "degraded") {
		t.Fatalf("healthy request: status %d body %s", resp.StatusCode, body)
	}
	hr, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	health := decodeBody(t, hbody)
	if health["status"] != "ok" || health["admission"] == nil {
		t.Fatalf("healthy healthz = %s", hbody)
	}

	// Expire the cache entry, then enter brownout: queue delay sustained
	// above target for a full window.
	advance(2 * time.Minute)
	adm.Brownout.Observe(10 * target)
	advance(window + time.Millisecond)
	adm.Brownout.Observe(10 * target)
	if !adm.BrownoutActive() {
		t.Fatal("sustained over-target delay did not enter brownout")
	}
	hr, err = http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ = io.ReadAll(hr.Body)
	hr.Body.Close()
	if health = decodeBody(t, hbody); health["status"] != "brownout" {
		t.Fatalf("browned-out healthz status = %v, want brownout (%s)", health["status"], hbody)
	}

	// The expired resident entry is served stale rather than re-swept.
	resp, body = postJSON(t, base+"/v1/recommend", cached)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale-serve: status %d (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Parcost-Degraded") != "stale" {
		t.Fatalf("stale answer missing X-Parcost-Degraded header (got %q)", resp.Header.Get("X-Parcost-Degraded"))
	}
	if m := decodeBody(t, body); m["degraded"] != true {
		t.Fatalf("stale answer not marked degraded: %s", body)
	}

	// With the only sweep slot busy, a sweep-requiring miss is shed.
	release, err := adm.Queue.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	miss := map[string]any{"o": 146, "v": 1096, "objective": "stq"}
	resp, body = postJSON(t, base+"/v1/recommend", miss)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("browned-out miss: status %d, want 503 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("brownout 503 without a Retry-After header")
	}
	if m := decodeBody(t, body); m["reason"] != "brownout" {
		t.Fatalf("shed reason = %v, want brownout (%s)", m["reason"], body)
	}

	// Batch: the stale-servable entry degrades, the miss sheds per entry.
	resp, body = postJSON(t, base+"/v1/batch", map[string]any{"queries": []map[string]any{cached, miss}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch envelope: status %d (%s)", resp.StatusCode, body)
	}
	var batch struct {
		Results []struct {
			Result *struct {
				Degraded bool `json:"degraded"`
			} `json:"result"`
			Error      string `json:"error"`
			Reason     string `json:"reason"`
			RetryAfter int    `json:"retry_after"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &batch); err != nil || len(batch.Results) != 2 {
		t.Fatalf("batch response %s: %v", body, err)
	}
	if batch.Results[0].Result == nil || !batch.Results[0].Result.Degraded {
		t.Fatalf("batch entry 0 should be a degraded stale answer: %s", body)
	}
	if batch.Results[1].Reason != "brownout" || batch.Results[1].RetryAfter < 1 || batch.Results[1].Error == "" {
		t.Fatalf("batch entry 1 should be a structured brownout shed: %s", body)
	}
	release(0)

	// The scrape carries the overload families alongside the serving ones.
	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, want := range []string{
		"parcost_admission_queue_depth",
		"parcost_brownout_active 1",
		"parcost_sweep_shed_brownout_total",
		"parcost_stale_served_total",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, mbody)
		}
	}
}
