package main

import (
	"flag"
	"fmt"

	"parcost/internal/dataset"
	"parcost/internal/guide"
	"parcost/internal/machine"
	"parcost/internal/ml/tree"
	"parcost/internal/rng"
	"parcost/internal/stats"
)

func treeParams(depth int) tree.Params {
	return tree.Params{MaxDepth: depth, MinSamplesSplit: 2, MinSamplesLeaf: 1}
}

// queryFlags parses the flags shared by stq/bq/predict/eval.
type queryFlags struct {
	data, machine, model string
	o, v, nodes, tile    int
	trees, depth         int
	seed                 uint64
}

// parseQueryFlags parses and validates the shared query flags. withConfig
// adds -nodes/-tile (predict); needProblem requires a positive -o/-v
// (everything but eval). Zero is the flag default, so "required and
// positive" also rejects accidental `-o 0` queries that would otherwise
// silently sweep a nonsense problem.
func parseQueryFlags(args []string, withConfig, needProblem bool) (*queryFlags, error) {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	qf := &queryFlags{}
	fs.StringVar(&qf.data, "data", "", "dataset CSV")
	fs.StringVar(&qf.machine, "machine", "aurora", "machine")
	fs.StringVar(&qf.model, "model", "", "trained advisor artifact (from `parcost train`); skips refitting")
	fs.IntVar(&qf.o, "o", 0, "occupied orbitals")
	fs.IntVar(&qf.v, "v", 0, "virtual orbitals")
	if withConfig {
		fs.IntVar(&qf.nodes, "nodes", 0, "node count")
		fs.IntVar(&qf.tile, "tile", 0, "tile size")
	}
	fs.IntVar(&qf.trees, "trees", 750, "GB estimators")
	fs.IntVar(&qf.depth, "depth", 10, "GB max depth")
	fs.Uint64Var(&qf.seed, "seed", 1, "seed")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if needProblem {
		if qf.o <= 0 || qf.v <= 0 {
			return nil, fmt.Errorf("-o and -v are required and must be positive (got o=%d v=%d)", qf.o, qf.v)
		}
	}
	if withConfig {
		if qf.nodes <= 0 || qf.tile <= 0 {
			return nil, fmt.Errorf("-nodes and -tile are required and must be positive (got nodes=%d tile=%d)", qf.nodes, qf.tile)
		}
	}
	if qf.model != "" {
		// An artifact fixes the training data, machine, and hyper-parameters
		// at train time; silently discarding an explicitly-set flag would
		// hide that the answer comes from the artifact's configuration.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		for _, name := range []string{"data", "machine", "trees", "depth", "seed"} {
			if set[name] {
				return nil, fmt.Errorf("-%s has no effect with -model: the artifact fixes it at train time", name)
			}
		}
	} else if qf.trees <= 0 || qf.depth <= 0 {
		return nil, fmt.Errorf("-trees and -depth must be positive (got trees=%d depth=%d)", qf.trees, qf.depth)
	}
	return qf, nil
}

// advisorForQuery returns a ready advisor and the machine spec: either
// loaded from a trained artifact (-model) or fitted in-process from the
// dataset (-data, or simulated). With -model, the artifact's recorded
// machine overrides -machine so oracle pruning matches training provenance.
func advisorForQuery(qf *queryFlags) (*guide.Advisor, machine.Spec, error) {
	if qf.model != "" {
		adv, machineName, err := guide.LoadAdvisor(qf.model)
		if err != nil {
			return nil, machine.Spec{}, err
		}
		spec, err := machine.ByName(machineName)
		if err != nil {
			return nil, machine.Spec{}, fmt.Errorf("artifact machine: %w", err)
		}
		return adv, spec, nil
	}
	d, spec, err := loadOrGenerate(qf.data, qf.machine, qf.seed, defaultGenSize)
	if err != nil {
		return nil, machine.Spec{}, err
	}
	adv, err := guide.NewAdvisor(buildGB(qf.trees, qf.depth, qf.seed), d)
	if err != nil {
		return nil, machine.Spec{}, err
	}
	return adv, spec, nil
}

func runQuery(args []string, obj guide.Objective) error {
	qf, err := parseQueryFlags(args, false, true)
	if err != nil {
		return err
	}
	adv, spec, err := advisorForQuery(qf)
	if err != nil {
		return err
	}
	oracle := guide.NewSimOracle(spec)
	p := dataset.Problem{O: qf.o, V: qf.v}
	rec, err := adv.Recommend(p, obj, oracle)
	if err != nil {
		return err
	}
	fmt.Printf("Problem %v on %s — %s\n", p, spec.Name, obj)
	fmt.Printf("  recommended: nodes=%d tile=%d\n", rec.Config.Nodes, rec.Config.TileSize)
	fmt.Printf("  predicted iteration time: %.2f s\n", rec.PredTime)
	if obj == guide.Budget {
		fmt.Printf("  predicted node-hours:     %.3f\n", rec.PredValue)
	}
	// Show the true optimum for reference (simulator oracle).
	if trueCfg, trueVal, trueTime, ok := guide.OptimalConfig(oracle, adv.Grid, p, obj); ok {
		fmt.Printf("  (simulator optimum: nodes=%d tile=%d, %.2f s", trueCfg.Nodes, trueCfg.TileSize, trueTime)
		if obj == guide.Budget {
			fmt.Printf(", %.3f node-hours", trueVal)
		}
		fmt.Printf(")\n")
	}
	return nil
}

func runPredict(args []string) error {
	qf, err := parseQueryFlags(args, true, true)
	if err != nil {
		return err
	}
	adv, spec, err := advisorForQuery(qf)
	if err != nil {
		return err
	}
	cfg := dataset.Config{O: qf.o, V: qf.v, Nodes: qf.nodes, TileSize: qf.tile}
	pred := adv.Model.Predict([][]float64{cfg.Features()})[0]
	fmt.Printf("Predicted iteration time for %v on %s: %.2f s\n", cfg, spec.Name, pred)
	fmt.Printf("Predicted node-hours: %.3f\n", float64(cfg.Nodes)*pred/3600)
	return nil
}

func runEval(args []string) error {
	qf, err := parseQueryFlags(args, false, false)
	if err != nil {
		return err
	}
	d, spec, err := loadOrGenerate(qf.data, qf.machine, qf.seed, defaultGenSize)
	if err != nil {
		return err
	}
	train, test := d.Split(0.25, rng.New(qf.seed+1))
	model := buildGB(qf.trees, qf.depth, qf.seed)
	if err := model.Fit(train.Features(), train.Targets()); err != nil {
		return err
	}
	sc := stats.Evaluate(test.Targets(), model.Predict(test.Features()))
	fmt.Printf("Model evaluation on %s (%d train / %d test):\n", spec.Name, train.Len(), test.Len())
	fmt.Printf("  R2=%.4f  MAE=%.3f  MAPE=%.4f\n", sc.R2, sc.MAE, sc.MAPE)
	return nil
}
