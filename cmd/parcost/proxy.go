package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parcost/internal/fleetproxy"
)

// runProxy fronts N `parcost serve` backends with one fault-tolerant
// endpoint speaking the identical /v1 wire contract: consistent-hash routing
// on the machine key, health-probed backends, bounded retries with backoff,
// hedged duplicates for slow primaries, per-backend circuit breakers, and
// explicit degradation (stale replay or structured 503) on total outage.
func runProxy(args []string) error {
	fs := flag.NewFlagSet("proxy", flag.ContinueOnError)
	var (
		backends        = fs.String("backends", "", "comma-separated `parcost serve` addresses, e.g. host1:8081,host2:8082 (required)")
		addr            = fs.String("addr", ":8080", "listen address")
		hedgeAfter      = fs.String("hedge-after", "95p", "hedge a slow request onto the next replica after: a latency percentile (\"95p\"), a fixed delay (\"250ms\"), or \"off\"")
		retries         = fs.Int("retries", 2, "additional attempts on other replicas after a connection failure or 5xx")
		retryBudget     = fs.Float64("retry-budget", 0.2, "fleet-wide retry/hedge tokens earned per initial request (caps brownout amplification; 0 disables the budget)")
		timeout         = fs.Duration("timeout", 30*time.Second, "per-attempt upstream deadline")
		breakerWindow   = fs.Duration("breaker-window", 10*time.Second, "how long a tripped circuit breaker rejects a backend before admitting trials")
		breakerFailures = fs.Int("breaker-failures", 5, "consecutive failures that trip a backend's breaker open")
		probeEvery      = fs.Duration("probe-every", 2*time.Second, "background health-probe interval")
		staleCache      = fs.Int("stale-cache", 256, "stale-response cache entries for degraded answers (0 disables)")
		drain           = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout on SIGINT/SIGTERM")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *backends == "" {
		return fmt.Errorf("-backends is required")
	}
	if *retries < 0 || *breakerFailures < 1 || *staleCache < 0 || *retryBudget < 0 {
		return fmt.Errorf("-retries, -retry-budget, and -stale-cache must be non-negative and -breaker-failures positive")
	}
	if *timeout <= 0 || *breakerWindow <= 0 || *probeEvery <= 0 || *drain <= 0 {
		return fmt.Errorf("-timeout, -breaker-window, -probe-every, and -drain must be positive")
	}
	hedge, err := fleetproxy.ParseHedge(*hedgeAfter)
	if err != nil {
		return err
	}

	var list []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			list = append(list, b)
		}
	}
	cfg := fleetproxy.Config{
		Backends:        list,
		Retries:         *retries,
		RetryBudget:     *retryBudget,
		Hedge:           hedge,
		RequestTimeout:  *timeout,
		BreakerWindow:   *breakerWindow,
		BreakerFailures: *breakerFailures,
		ProbeInterval:   *probeEvery,
		StaleCacheSize:  *staleCache,
	}
	// The flag's 0 genuinely means "no retries"/"no budget"/"no cache"; the
	// Config zero value means "default".
	if *retries == 0 {
		cfg.Retries = -1
	}
	if *retryBudget == 0 {
		cfg.RetryBudget = -1
	}
	if *staleCache == 0 {
		cfg.StaleCacheSize = -1
	}

	p, err := fleetproxy.New(cfg)
	if err != nil {
		return err
	}
	defer p.Close()
	p.Start()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := hardenedServer(*addr, p.Handler())
	fmt.Printf("Proxying %d backends on %s (hedge %s, retries %d, breaker %v/%d)\n",
		len(p.Backends()), *addr, *hedgeAfter, *retries, *breakerWindow, *breakerFailures)
	return serveUntilShutdown(ctx, srv, nil, *drain, nil)
}
