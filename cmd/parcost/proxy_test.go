package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parcost/internal/dataset"
	"parcost/internal/fleetproxy"
	"parcost/internal/guide"
	"parcost/internal/machine"
)

// countedHandler wraps a serve handler with a request counter so tests can
// discover empirically which backend the proxy's hash ring made primary.
type countedHandler struct {
	http.Handler
	hits atomic.Int64
}

func (c *countedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.hits.Add(1)
	c.Handler.ServeHTTP(w, r)
}

// twinBackends builds two real `parcost serve` backends over the SAME advisor
// (identical models ⇒ identical predictions), so any backend can answer any
// query bit-identically — the replicated-fleet deployment shape.
func twinBackends(t testing.TB) (a, b *httptest.Server, ca, cb *countedHandler, routers [2]*guide.Router) {
	t.Helper()
	adv, oracle := testAdvisor(t, machine.Aurora())
	for i := range routers {
		routers[i] = guide.NewRouter()
		if err := routers[i].AddShard("aurora", adv, guide.WithOracle(oracle)); err != nil {
			t.Fatal(err)
		}
	}
	ca = &countedHandler{Handler: newServeHandler(routers[0], nil)}
	cb = &countedHandler{Handler: newServeHandler(routers[1], nil)}
	a = httptest.NewServer(ca)
	t.Cleanup(a.Close)
	b = httptest.NewServer(cb)
	t.Cleanup(b.Close)
	return a, b, ca, cb, routers
}

// TestProxyFailoverKillPrimaryMidStream is the PR's acceptance criterion: a
// 64-query stream against a two-backend proxy whose primary is killed
// mid-stream must complete every query — correct answers via failover, zero
// hangs. Run under -race in CI.
func TestProxyFailoverKillPrimaryMidStream(t *testing.T) {
	primary, replica, cp, cr, _ := twinBackends(t)

	p, err := fleetproxy.New(fleetproxy.Config{
		Backends:        []string{primary.URL, replica.URL},
		Retries:         2,
		RetryBackoff:    5 * time.Millisecond,
		RequestTimeout:  10 * time.Second,
		BreakerWindow:   100 * time.Millisecond,
		BreakerFailures: 2,
		Hedge:           fleetproxy.HedgeSpec{Fixed: 250 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	front := httptest.NewServer(p.Handler())
	t.Cleanup(front.Close)

	// Warm-up query reveals which backend the ring made primary for "aurora"
	// (and pre-sweeps the problem, keeping the stream itself fast).
	if resp, body := postJSON(t, front.URL+"/v1/recommend",
		recommendRequest{O: 99, V: 718, Objective: "stq"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up: %d %s", resp.StatusCode, body)
	}
	kill := primary
	if cr.hits.Load() > cp.hits.Load() {
		kill = replica
	}

	// In-process ground truth for every query shape in the stream.
	problems := []dataset.Problem{{O: 99, V: 718}, {O: 146, V: 1096}, {O: 180, V: 1070}}
	objectives := []string{"stq", "bq"}
	type wire struct {
		req  recommendRequest
		want recommendResponse
	}
	var shapes []wire
	for _, pr := range problems {
		for _, obj := range objectives {
			req := recommendRequest{O: pr.O, V: pr.V, Objective: obj}
			resp, body := postJSON(t, front.URL+"/v1/recommend", req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("ground truth %+v: %d %s", req, resp.StatusCode, body)
			}
			var want recommendResponse
			if err := json.Unmarshal(body, &want); err != nil {
				t.Fatal(err)
			}
			shapes = append(shapes, wire{req: req, want: want})
		}
	}

	const streams = 64
	completed := make(chan int, streams)
	errs := make(chan error, streams)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := shapes[i%len(shapes)]
			// Not postJSON: t.Fatal is illegal off the test goroutine.
			data, err := json.Marshal(sh.req)
			if err != nil {
				errs <- err
				return
			}
			resp, err := http.Post(front.URL+"/v1/recommend", "application/json", strings.NewReader(string(data)))
			if err != nil {
				errs <- fmt.Errorf("query %d: %v", i, err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- fmt.Errorf("query %d: %v", i, err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("query %d (%+v): status %d body %s", i, sh.req, resp.StatusCode, body)
				return
			}
			var got recommendResponse
			if err := json.Unmarshal(body, &got); err != nil {
				errs <- fmt.Errorf("query %d: %v", i, err)
				return
			}
			if got != sh.want {
				errs <- fmt.Errorf("query %d diverged after failover: got %+v want %+v", i, got, sh.want)
				return
			}
			completed <- i
		}(i)
	}

	// Kill the primary after ~10 completions: in-flight requests see resets,
	// the breaker trips, and the rest of the stream fails over.
	go func() {
		for n := 0; n < 10; n++ {
			<-completed
		}
		kill.CloseClientConnections()
		kill.Close()
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatal("stream did not complete: requests hung after primary death")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestProxyDrainWarmHandoff drives the shard-migration path end to end with
// real serve backends: traffic warms the primary's sweep cache, the drain
// admin endpoint hands its warm set to the survivor, and the follow-up query
// is served from the survivor's warmed cache.
func TestProxyDrainWarmHandoff(t *testing.T) {
	a, b, ca, cb, routers := twinBackends(t)

	p, err := fleetproxy.New(fleetproxy.Config{
		Backends:       []string{a.URL, b.URL},
		RequestTimeout: 30 * time.Second,
		Hedge:          fleetproxy.HedgeSpec{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	front := httptest.NewServer(p.Handler())
	t.Cleanup(front.Close)

	// Two distinct problems sweep (and cache) on the aurora primary.
	for _, pr := range []dataset.Problem{{O: 99, V: 718}, {O: 146, V: 1096}} {
		resp, body := postJSON(t, front.URL+"/v1/recommend", recommendRequest{O: pr.O, V: pr.V, Objective: "stq"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm traffic: %d %s", resp.StatusCode, body)
		}
	}
	drained, survivor := a, routers[1]
	if cb.hits.Load() > ca.hits.Load() {
		drained, survivor = b, routers[0]
	}

	resp, body := postJSON(t, front.URL+"/v1/admin/drain", map[string]string{"backend": drained.URL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %d %s", resp.StatusCode, body)
	}
	var dr struct {
		Warmed int `json:"warmed"`
	}
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Warmed != 2 {
		t.Fatalf("drain warmed %d keys, want 2", dr.Warmed)
	}
	if got := p.Backends(); len(got) != 1 {
		t.Fatalf("ring still lists %d backends after drain", len(got))
	}

	// The survivor was pre-swept by the handoff: the same query is a cache
	// hit there, not a fresh sweep.
	before := survivor.AggregateStats()
	resp, body = postJSON(t, front.URL+"/v1/recommend", recommendRequest{O: 99, V: 718, Objective: "stq"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain query: %d %s", resp.StatusCode, body)
	}
	after := survivor.AggregateStats()
	if after.Hits != before.Hits+1 || after.Misses != before.Misses {
		t.Fatalf("post-drain query not served warm: before %+v after %+v", before, after)
	}
}

// TestProxyFlagValidation pins the CLI contract of `parcost proxy`.
func TestProxyFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing backends", []string{}, "-backends"},
		{"negative retries", []string{"-backends", "h:1", "-retries", "-1"}, "-retries"},
		{"zero breaker failures", []string{"-backends", "h:1", "-breaker-failures", "0"}, "-breaker-failures"},
		{"zero timeout", []string{"-backends", "h:1", "-timeout", "0s"}, "-timeout"},
		{"zero breaker window", []string{"-backends", "h:1", "-breaker-window", "0s"}, "-breaker-window"},
		{"zero probe interval", []string{"-backends", "h:1", "-probe-every", "0s"}, "-probe-every"},
		{"bad hedge", []string{"-backends", "h:1", "-hedge-after", "soon"}, "hedge"},
		{"bad hedge percentile", []string{"-backends", "h:1", "-hedge-after", "250p"}, "percentile"},
		{"duplicate backends", []string{"-backends", "h:1,h:1"}, "twice"},
		{"empty backend list", []string{"-backends", " , "}, "backend"},
	}
	for _, tc := range cases {
		err := runProxy(tc.args)
		if err == nil {
			t.Errorf("%s: expected error, got none", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// BenchmarkProxy_Overhead measures the per-request cost the proxy adds over a
// direct backend on the cheapest endpoint (/v1/predict — no sweep, so the
// numbers isolate proxy forwarding, not model work).
func BenchmarkProxy_Overhead(b *testing.B) {
	router, _, _ := testRouter(b)
	backend := httptest.NewServer(newServeHandler(router, nil))
	b.Cleanup(backend.Close)

	p, err := fleetproxy.New(fleetproxy.Config{Backends: []string{backend.URL}})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(p.Close)
	front := httptest.NewServer(p.Handler())
	b.Cleanup(front.Close)

	body, _ := json.Marshal(predictRequest{O: 99, V: 718, Nodes: 100, Tile: 80})
	bench := func(url string) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				resp, err := http.Post(url+"/v1/predict", "application/json", strings.NewReader(string(body)))
				if err != nil {
					b.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
	b.Run("direct", bench(backend.URL))
	b.Run("proxy", bench(front.URL))
}
