package main

import (
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"parcost/internal/dataset"
	"parcost/internal/guide"
	"parcost/internal/machine"
)

// recordingObserver captures /v1/observe ingest for the handler tests.
type recordingObserver struct {
	mu  sync.Mutex
	got []guide.Observation
	err error
}

func (r *recordingObserver) Observe(o guide.Observation) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	r.got = append(r.got, o)
	return nil
}

func (r *recordingObserver) observations() []guide.Observation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]guide.Observation(nil), r.got...)
}

// TestObserveEndpoint drives POST /v1/observe through both frontends: a
// plain serve (no observer) must answer 501 pointing at the retrain daemon
// (relayed, not retried, by the proxy), and a wired observer must receive
// exactly the validated, machine-resolved observations.
func TestObserveEndpoint(t *testing.T) {
	forEachFrontend(t, testObserveEndpoint)
}

func testObserveEndpoint(t *testing.T, newFrontend frontendFactory) {
	router, _, _ := testRouter(t)
	valid := map[string]any{"o": 146, "v": 1096, "nodes": 100, "tile": 80, "seconds": 12.5}

	// Plain serve: ingest is not wired up.
	plain := newFrontend(t, newServeHandler(router, nil))
	resp, body := postJSON(t, plain+"/v1/observe", valid)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("observe without observer: status %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "retrain daemon") {
		t.Errorf("501 body should point at the retrain daemon: %s", body)
	}

	// Retrain shape: observer receives the report, machine defaulted.
	obs := &recordingObserver{}
	base := newFrontend(t, newServeHandler(router, obs))
	resp, body = postJSON(t, base+"/v1/observe", valid)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("valid observe: status %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"machine":"aurora"`) {
		t.Errorf("accepted response should echo the resolved machine: %s", body)
	}
	got := obs.observations()
	if len(got) != 1 {
		t.Fatalf("observer received %d observations, want 1", len(got))
	}
	want := guide.Observation{
		Machine: "aurora",
		Config:  dataset.Config{O: 146, V: 1096, Nodes: 100, TileSize: 80},
		Seconds: 12.5,
	}
	if got[0] != want {
		t.Errorf("observation = %+v, want %+v", got[0], want)
	}

	// Bad requests never reach the observer.
	for name, tc := range map[string]struct {
		body map[string]any
		want string
	}{
		"unknown machine": {map[string]any{"machine": "perlmutter", "o": 146, "v": 1096, "nodes": 100, "tile": 80, "seconds": 1.0}, "perlmutter"},
		"zero config":     {map[string]any{"o": 0, "v": 1096, "nodes": 100, "tile": 80, "seconds": 1.0}, "positive"},
		"zero seconds":    {map[string]any{"o": 146, "v": 1096, "nodes": 100, "tile": 80, "seconds": 0}, "seconds"},
	} {
		resp, body := postJSON(t, base+"/v1/observe", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s", name, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), tc.want) {
			t.Errorf("%s: body %s does not mention %q", name, body, tc.want)
		}
	}
	if n := len(obs.observations()); n != 1 {
		t.Errorf("invalid requests leaked through: observer has %d observations, want 1", n)
	}

	// Observer rejections surface as 400s (e.g. a paused controller).
	obs.err = fmt.Errorf("controller draining")
	resp, body = postJSON(t, base+"/v1/observe", valid)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "draining") {
		t.Errorf("observer error: status %d, body %s", resp.StatusCode, body)
	}
}

// TestServeMetricsEndpoint scrapes GET /metrics on the serve handler and
// checks the Prometheus exposition carries both the latency histograms and
// the per-machine sweep-cache series.
func TestServeMetricsEndpoint(t *testing.T) {
	router, _, _ := testRouter(t)
	base := directFrontend(t, newServeHandler(router, nil))

	// Generate traffic so the route histogram and shard stats are non-empty.
	if resp, body := postJSON(t, base+"/v1/recommend", map[string]any{"o": 146, "v": 1096, "objective": "stq"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend: status %d, body %s", resp.StatusCode, body)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != guide.PrometheusContentType {
		t.Errorf("Content-Type = %q, want %q", ct, guide.PrometheusContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`parcost_request_duration_seconds_count{route="recommend"} 1`,
		`parcost_sweep_cache_misses_total{machine="aurora"}`,
		`parcost_grid_sweeps_total{machine="aurora"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestProxyMetricsEndpoint checks the proxy exports its own /metrics (its
// request latency, no sweep-cache series — the proxy holds no models).
func TestProxyMetricsEndpoint(t *testing.T) {
	router, _, _ := testRouter(t)
	base := proxyFrontend(t, newServeHandler(router, nil))

	if resp, body := postJSON(t, base+"/v1/recommend", map[string]any{"o": 146, "v": 1096, "objective": "stq"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend through proxy: status %d, body %s", resp.StatusCode, body)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxy metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != guide.PrometheusContentType {
		t.Errorf("Content-Type = %q, want %q", ct, guide.PrometheusContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "parcost_request_duration_seconds") {
		t.Error("proxy metrics missing request-duration histogram")
	}
	if strings.Contains(text, "parcost_sweep_cache") {
		t.Error("proxy metrics should not export sweep-cache series (it holds no models)")
	}
}

func TestRetrainFlagValidation(t *testing.T) {
	state := filepath.Join(t.TempDir(), "state")
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"missing model", nil, "-model"},
		{"bad strategy", []string{"-model", "m.json", "-strategy", "zz"}, "-strategy"},
		{"zero batch", []string{"-model", "m.json", "-batch", "0"}, "-batch"},
		{"zero drift window", []string{"-model", "m.json", "-drift-window", "0"}, "-drift-window"},
		{"zero rollback window", []string{"-model", "m.json", "-rollback-window", "0"}, "-rollback-window"},
		{"zero drift threshold", []string{"-model", "m.json", "-drift-threshold", "0"}, "-drift-threshold"},
		{"zero gate margin", []string{"-model", "m.json", "-gate-margin", "0"}, "-gate-margin"},
		{"zero trees", []string{"-model", "m.json", "-trees", "0"}, "-trees"},
		{"zero drain", []string{"-model", "m.json", "-drain", "0s"}, "-drain"},
		{"missing artifact", []string{"-model", filepath.Join(state, "missing.json"), "-state", state}, "missing.json"},
	} {
		err := runRetrain(tc.args)
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// BenchmarkRetrain_HotSwap measures the query path while a promotion storm
// runs in the background: one goroutine hot-swaps the aurora shard between
// two advisors as fast as it can, and the benchmark times Recommend through
// the churn. This is the latency a client sees during a retrain promotion.
func BenchmarkRetrain_HotSwap(b *testing.B) {
	router, adv, _ := testRouter(b)
	adv2, _ := testAdvisor(b, machine.Aurora())
	problem := dataset.Problem{O: 146, V: 1096}
	if _, err := router.Recommend("aurora", problem, guide.ShortestTime); err != nil {
		b.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		advisors := []*guide.Advisor{adv2, adv}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := router.SwapShard("aurora", advisors[i%2], 4); err != nil {
				b.Error(err)
				return
			}
		}
	}()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := router.Recommend("aurora", problem, guide.ShortestTime); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
