package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parcost/internal/dataset"
	"parcost/internal/guide"
	"parcost/internal/machine"
)

// runServe loads a trained artifact — a multi-machine fleet bundle or a
// single-advisor artifact — and serves STQ/BQ/predict queries over HTTP,
// backed by a guide.Router of per-machine Service shards (bounded sweep
// caches, one fleet-wide sweep semaphore, coalesced concurrent queries).
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		model   = fs.String("model", "", "trained artifact: fleet bundle or single advisor (required; from `parcost train`)")
		addr    = fs.String("addr", ":8080", "listen address")
		cache   = fs.Int("cache", guide.DefaultCacheSize, "sweep-cache entries per shard (0 removes the entry bound)")
		cacheMB = fs.Int("cache-mb", 0, "sweep-cache byte budget per shard, in MiB (0 = no byte bound)")
		ttl     = fs.Duration("ttl", 0, "sweep-cache entry TTL, e.g. 30m (0 = no expiry)")
		warmset = fs.String("warmset", "", "warm-set file: pre-sweep its keys at startup, save the hottest keys on shutdown")
		drain   = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout on SIGINT/SIGTERM")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *model == "" {
		return fmt.Errorf("-model is required")
	}
	if *cache < 0 || *cacheMB < 0 || *ttl < 0 || *drain <= 0 {
		return fmt.Errorf("-cache, -cache-mb, and -ttl must be non-negative and -drain positive")
	}
	entries, _, err := guide.LoadFleet(*model)
	if err != nil {
		return err
	}
	router := guide.NewRouter()
	shardOpts := []guide.ServiceOption{
		guide.WithCacheSize(*cache),
		guide.WithCacheBytes(int64(*cacheMB) << 20),
		guide.WithTTL(*ttl),
	}
	for _, e := range entries {
		spec, err := machine.ByName(e.Machine)
		if err != nil {
			return fmt.Errorf("artifact machine: %w", err)
		}
		opts := append([]guide.ServiceOption{guide.WithOracle(guide.NewSimOracle(spec))}, shardOpts...)
		if err := router.AddShard(e.Machine, e.Advisor, opts...); err != nil {
			return err
		}
		fmt.Printf("Shard %s: %s advisor (grid %d nodes × %d tiles)\n",
			e.Machine, e.Advisor.Model.Name(), len(e.Advisor.Grid.Nodes), len(e.Advisor.Grid.TileSizes))
	}
	if *warmset != "" {
		if warmed, err := router.LoadWarmSet(*warmset); err == nil {
			fmt.Printf("Warm set %s: pre-swept %d keys\n", *warmset, warmed)
		} else if !errors.Is(err, os.ErrNotExist) {
			// A missing file is the normal first boot; anything else (corrupt
			// warm set, unreadable path) should be visible but not fatal.
			fmt.Fprintf(os.Stderr, "warning: warm set %s not loaded: %v\n", *warmset, err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := hardenedServer(*addr, newServeHandler(router, nil))
	fmt.Printf("Serving fleet %v on %s\n", router.Machines(), *addr)
	return serveUntilShutdown(ctx, srv, nil, *drain, saveWarmSetOnDrain(router, *warmset))
}

// Hardened http.Server limits: without them a client that trickles header
// bytes (slow loris) or never finishes a body pins a connection forever, and
// idle keep-alives accumulate across deploy cycles. Request bodies are
// additionally capped at maxRequestBytes via http.MaxBytesReader, answered
// with a structured 413.
const (
	serverReadHeaderTimeout = 5 * time.Second
	serverReadTimeout       = 30 * time.Second
	serverIdleTimeout       = 120 * time.Second
	maxRequestBytes         = 1 << 20
)

// hardenedServer builds the http.Server shared by serve and proxy with the
// slow-client limits above. No WriteTimeout: cold sweeps legitimately run
// long, and the drain timeout already bounds shutdown.
func hardenedServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: serverReadHeaderTimeout,
		ReadTimeout:       serverReadTimeout,
		IdleTimeout:       serverIdleTimeout,
	}
}

// saveWarmSetOnDrain is the drain hook runServe installs: persist the warm
// set after in-flight requests finish. A save failure names the path and
// becomes the process exit status — losing the warm set silently would turn
// the next boot's first burst into unexplained cold-sweep latency.
func saveWarmSetOnDrain(router *guide.Router, path string) func() error {
	return func() error {
		if path == "" {
			return nil
		}
		if err := router.SaveWarmSet(path, 0); err != nil {
			return fmt.Errorf("warm set %s not saved on drain: %w", path, err)
		}
		fmt.Printf("Warm set saved to %s\n", path)
		return nil
	}
}

// serveUntilShutdown runs the server until it fails or ctx is cancelled
// (SIGINT/SIGTERM in production). On cancellation it stops accepting new
// connections, lets in-flight requests — including long cold sweeps — finish
// within the drain timeout via http.Server.Shutdown, then runs onDrained
// (warm-set persistence). A clean drain returns nil; a drain-hook failure is
// the return value (and thus the exit status) when shutdown itself
// succeeded, so a lost warm set is never silent. ln, when non-nil, supplies
// the listener (tests bind port 0 to learn the address); nil uses srv.Addr.
func serveUntilShutdown(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration, onDrained func() error) error {
	errCh := make(chan error, 1)
	go func() {
		if ln != nil {
			errCh <- srv.Serve(ln)
			return
		}
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		return err // bind failure or other serve error; nothing to drain
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	var drainErr error
	if onDrained != nil {
		if drainErr = onDrained(); drainErr != nil {
			fmt.Fprintf(os.Stderr, "error: drain: %v\n", drainErr)
		}
	}
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return drainErr
}

// Request/response schema of the serve endpoints. All bodies are JSON. The
// machine field routes a query to its fleet shard; it may be omitted when
// the fleet serves exactly one machine (the pre-fleet single-advisor wire
// format keeps working unchanged).
type recommendRequest struct {
	Machine   string `json:"machine,omitempty"`
	O         int    `json:"o"`
	V         int    `json:"v"`
	Objective string `json:"objective"` // "stq" or "bq"
}

type recommendResponse struct {
	Machine     string  `json:"machine"`
	O           int     `json:"o"`
	V           int     `json:"v"`
	Objective   string  `json:"objective"`
	Nodes       int     `json:"nodes"`
	Tile        int     `json:"tile"`
	PredSeconds float64 `json:"pred_seconds"`
	PredValue   float64 `json:"pred_value"` // seconds (STQ) or node-hours (BQ)
}

type predictRequest struct {
	Machine string `json:"machine,omitempty"`
	O       int    `json:"o"`
	V       int    `json:"v"`
	Nodes   int    `json:"nodes"`
	Tile    int    `json:"tile"`
}

type predictResponse struct {
	Machine       string  `json:"machine"`
	PredSeconds   float64 `json:"pred_seconds"`
	PredNodeHours float64 `json:"pred_node_hours"`
}

type batchRequest struct {
	Queries []recommendRequest `json:"queries"`
}

type batchEntry struct {
	Result *recommendResponse `json:"result,omitempty"`
	Error  string             `json:"error,omitempty"`
}

type batchResponse struct {
	Results []batchEntry `json:"results"`
}

// observeRequest reports a configuration that actually ran and how long an
// iteration took, feeding the retrain daemon's drift monitors.
type observeRequest struct {
	Machine string  `json:"machine,omitempty"`
	O       int     `json:"o"`
	V       int     `json:"v"`
	Nodes   int     `json:"nodes"`
	Tile    int     `json:"tile"`
	Seconds float64 `json:"seconds"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// decodeJSON reads a size-capped JSON request body into dst, answering a
// structured 413 when the body exceeds maxRequestBytes and a structured 400
// when it is malformed. Returns false when a response has been written.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
				Error: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed JSON body: " + err.Error()})
		return false
	}
	return true
}

// newServeHandler builds the HTTP API over a guide.Router. Split from
// runServe so tests drive the exact handler the daemon mounts. obs, when
// non-nil, receives /v1/observe reports (the retrain daemon's drift
// monitors); a plain `parcost serve` passes nil and the endpoint answers
// 501 so clients learn observation ingest is not wired up (501, not 503:
// the condition is configuration, not a transient fault, so the proxy
// relays it instead of failing over).
func newServeHandler(router *guide.Router, obs guide.Observer) http.Handler {
	mux := http.NewServeMux()
	metrics := guide.NewMetrics()

	// Prometheus scrape endpoint. Deliberately NOT instrumented: scraping
	// every 15s would swamp the latency histograms it exports.
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", guide.PrometheusContentType)
		guide.WritePrometheus(w, metrics.Snapshot(), router.ShardStats())
	})

	mux.HandleFunc("POST /v1/observe", metrics.Instrument("observe", func(w http.ResponseWriter, r *http.Request) {
		var req observeRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		if obs == nil {
			writeJSON(w, http.StatusNotImplemented, errorResponse{
				Error: "observation ingest requires the retrain daemon (run `parcost retrain`)"})
			return
		}
		// Resolve the machine like every other endpoint, so a defaulted
		// single-shard fleet works and unknown machines fail loudly.
		machineName, _, err := router.ResolveShard(req.Machine)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		o := guide.Observation{
			Machine: machineName,
			Config:  dataset.Config{O: req.O, V: req.V, Nodes: req.Nodes, TileSize: req.Tile},
			Seconds: req.Seconds,
		}
		if err := o.Validate(); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		if err := obs.Observe(o); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "accepted", "machine": machineName})
	}))

	mux.HandleFunc("GET /v1/healthz", metrics.Instrument("healthz", func(w http.ResponseWriter, r *http.Request) {
		resp := guide.HealthReport{
			Status:    "ok",
			Aggregate: guide.HealthFromStats(router.AggregateStats()),
			Latency:   metrics.Snapshot(),
		}
		stats := router.ShardStats()
		for _, name := range router.Machines() {
			svc, err := router.Shard(name)
			if err != nil {
				continue // removed between listing and resolve
			}
			resp.Machines = append(resp.Machines, guide.ShardHealth{
				Machine:     name,
				Model:       svc.Advisor().Model.Name(),
				CacheHealth: guide.HealthFromStats(stats[name]),
			})
		}
		writeJSON(w, http.StatusOK, resp)
	}))

	// Warm-set handoff endpoints: GET exports the fleet's hottest keys in
	// the same versioned format SaveWarmSet writes; POST pre-sweeps an
	// exported set through this fleet. Together they let a proxy drain a
	// backend into its replacement without a shared filesystem.
	mux.HandleFunc("GET /v1/warmset", metrics.Instrument("warmset", func(w http.ResponseWriter, r *http.Request) {
		data, err := guide.EncodeWarmSet(router.ExportWarmSet(0))
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	}))

	mux.HandleFunc("POST /v1/warmset", metrics.Instrument("warmset", func(w http.ResponseWriter, r *http.Request) {
		var raw json.RawMessage
		if !decodeJSON(w, r, &raw) {
			return
		}
		ws, err := guide.DecodeWarmSet(raw)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		warmed, err := router.ImportWarmSet(ws)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"warmed": warmed})
	}))

	mux.HandleFunc("POST /v1/recommend", metrics.Instrument("recommend", func(w http.ResponseWriter, r *http.Request) {
		var req recommendRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := recommendOne(router, req)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}))

	mux.HandleFunc("POST /v1/batch", metrics.Instrument("batch", func(w http.ResponseWriter, r *http.Request) {
		var req batchRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		if len(req.Queries) == 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "batch requires at least one query"})
			return
		}
		// Validate every query up front so a malformed entry rejects the
		// batch before any sweeps run. Machine resolution stays per-entry:
		// a batch may mix machines, and an unknown one fails only its entry.
		queries := make([]guide.RoutedQuery, len(req.Queries))
		for i, q := range req.Queries {
			obj, err := parseObjective(q.Objective)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("query %d: %v", i, err)})
				return
			}
			if q.O <= 0 || q.V <= 0 {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("query %d: o and v must be positive (got o=%d v=%d)", i, q.O, q.V)})
				return
			}
			queries[i] = guide.RoutedQuery{
				Machine: q.Machine,
				Query:   guide.Query{Problem: dataset.Problem{O: q.O, V: q.V}, Objective: obj},
			}
		}
		results := router.RecommendBatch(queries)
		resp := batchResponse{Results: make([]batchEntry, len(results))}
		for i, res := range results {
			if res.Err != nil {
				resp.Results[i] = batchEntry{Error: res.Err.Error()}
				continue
			}
			rr := toRecommendResponse(req.Queries[i], res.Rec)
			rr.Machine = res.Machine // resolved shard name, not the (possibly empty) request field
			resp.Results[i] = batchEntry{Result: &rr}
		}
		writeJSON(w, http.StatusOK, resp)
	}))

	mux.HandleFunc("POST /v1/predict", metrics.Instrument("predict", func(w http.ResponseWriter, r *http.Request) {
		var req predictRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		if req.O <= 0 || req.V <= 0 || req.Nodes <= 0 || req.Tile <= 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("o, v, nodes, and tile must all be positive (got o=%d v=%d nodes=%d tile=%d)", req.O, req.V, req.Nodes, req.Tile)})
			return
		}
		machineName, svc, err := router.ResolveShard(req.Machine)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		cfg := dataset.Config{O: req.O, V: req.V, Nodes: req.Nodes, TileSize: req.Tile}
		secs := svc.PredictTime(cfg)
		writeJSON(w, http.StatusOK, predictResponse{
			Machine:       machineName,
			PredSeconds:   secs,
			PredNodeHours: float64(cfg.Nodes) * secs / 3600,
		})
	}))

	return mux
}

// recommendOne validates and answers a single recommend request. The
// response echoes the machine name resolved atomically with the shard
// lookup, so a defaulted query reports the shard that actually answered
// even if the fleet composition changes mid-request.
func recommendOne(router *guide.Router, req recommendRequest) (recommendResponse, error) {
	obj, err := parseObjective(req.Objective)
	if err != nil {
		return recommendResponse{}, err
	}
	if req.O <= 0 || req.V <= 0 {
		return recommendResponse{}, fmt.Errorf("o and v must be positive (got o=%d v=%d)", req.O, req.V)
	}
	machineName, svc, err := router.ResolveShard(req.Machine)
	if err != nil {
		return recommendResponse{}, err
	}
	rec, err := svc.Recommend(dataset.Problem{O: req.O, V: req.V}, obj)
	if err != nil {
		return recommendResponse{}, err
	}
	out := toRecommendResponse(req, rec)
	out.Machine = machineName
	return out, nil
}

func toRecommendResponse(req recommendRequest, rec guide.Recommendation) recommendResponse {
	return recommendResponse{
		Machine: req.Machine,
		O:       req.O, V: req.V, Objective: rec.Objective.String(),
		Nodes: rec.Config.Nodes, Tile: rec.Config.TileSize,
		PredSeconds: rec.PredTime, PredValue: rec.PredValue,
	}
}

// parseObjective maps the wire objective name to a guide.Objective.
func parseObjective(s string) (guide.Objective, error) {
	switch s {
	case "stq", "STQ":
		return guide.ShortestTime, nil
	case "bq", "BQ":
		return guide.Budget, nil
	default:
		return 0, fmt.Errorf("objective must be \"stq\" or \"bq\" (got %q)", s)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
