package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"parcost/internal/admission"
	"parcost/internal/dataset"
	"parcost/internal/guide"
	"parcost/internal/machine"
)

// runServe loads a trained artifact — a multi-machine fleet bundle or a
// single-advisor artifact — and serves STQ/BQ/predict queries over HTTP,
// backed by a guide.Router of per-machine Service shards (bounded sweep
// caches, one fleet-wide sweep semaphore, coalesced concurrent queries).
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		model   = fs.String("model", "", "trained artifact: fleet bundle or single advisor (required; from `parcost train`)")
		addr    = fs.String("addr", ":8080", "listen address")
		cache   = fs.Int("cache", guide.DefaultCacheSize, "sweep-cache entries per shard (0 removes the entry bound)")
		cacheMB = fs.Int("cache-mb", 0, "sweep-cache byte budget per shard, in MiB (0 = no byte bound)")
		ttl     = fs.Duration("ttl", 0, "sweep-cache entry TTL, e.g. 30m (0 = no expiry)")
		warmset = fs.String("warmset", "", "warm-set file: pre-sweep its keys at startup, save the hottest keys on shutdown")
		drain   = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout on SIGINT/SIGTERM")
	)
	admCfg := admissionFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *model == "" {
		return fmt.Errorf("-model is required")
	}
	if *cache < 0 || *cacheMB < 0 || *ttl < 0 || *drain <= 0 {
		return fmt.Errorf("-cache, -cache-mb, and -ttl must be non-negative and -drain positive")
	}
	adm, err := admCfg()
	if err != nil {
		return err
	}
	entries, _, err := guide.LoadFleet(*model)
	if err != nil {
		return err
	}
	router := guide.NewRouter(guide.WithAdmission(adm))
	shardOpts := []guide.ServiceOption{
		guide.WithCacheSize(*cache),
		guide.WithCacheBytes(int64(*cacheMB) << 20),
		guide.WithTTL(*ttl),
	}
	for _, e := range entries {
		spec, err := machine.ByName(e.Machine)
		if err != nil {
			return fmt.Errorf("artifact machine: %w", err)
		}
		opts := append([]guide.ServiceOption{guide.WithOracle(guide.NewSimOracle(spec))}, shardOpts...)
		if err := router.AddShard(e.Machine, e.Advisor, opts...); err != nil {
			return err
		}
		fmt.Printf("Shard %s: %s advisor (grid %d nodes × %d tiles)\n",
			e.Machine, e.Advisor.Model.Name(), len(e.Advisor.Grid.Nodes), len(e.Advisor.Grid.TileSizes))
	}
	if *warmset != "" {
		if warmed, err := router.LoadWarmSet(*warmset); err == nil {
			fmt.Printf("Warm set %s: pre-swept %d keys\n", *warmset, warmed)
		} else if !errors.Is(err, os.ErrNotExist) {
			// A missing file is the normal first boot; anything else (corrupt
			// warm set, unreadable path) should be visible but not fatal.
			fmt.Fprintf(os.Stderr, "warning: warm set %s not loaded: %v\n", *warmset, err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := hardenedServer(*addr, newServeHandler(router, nil))
	fmt.Printf("Serving fleet %v on %s\n", router.Machines(), *addr)
	return serveUntilShutdown(ctx, srv, nil, *drain, saveWarmSetOnDrain(router, *warmset))
}

// admissionFlags registers the overload-control flags shared by `parcost
// serve` and `parcost retrain` and returns a closure that, after Parse,
// validates them and builds the fleet's admission controller.
func admissionFlags(fs *flag.FlagSet) func() (*admission.Controller, error) {
	var (
		sweepLimit = fs.Int("sweep-limit", 0, "concurrent sweep slots across the fleet (0 = number of CPUs)")
		maxQueue   = fs.Int("max-queue", admission.DefaultMaxQueue, "max requests waiting for a sweep slot; arrivals past it are shed with 503")
		rate       = fs.Float64("rate", 0, "per-client request rate limit in requests/second, keyed on the X-Parcost-Client header (0 = unlimited)")
		rateBurst  = fs.Float64("rate-burst", 0, "per-client burst allowance for -rate (0 = same as -rate, min 1)")
		brownout   = fs.Duration("brownout", 0, "queue-delay target, e.g. 500ms: delay sustained above it enters brownout mode (0 disables)")
		brWindow   = fs.Duration("brownout-window", 0, "sustain interval for entering and leaving brownout (0 = 10x -brownout)")
	)
	return func() (*admission.Controller, error) {
		if *sweepLimit < 0 || *maxQueue < 0 || *rate < 0 || *rateBurst < 0 || *brownout < 0 || *brWindow < 0 {
			return nil, fmt.Errorf("-sweep-limit, -max-queue, -rate, -rate-burst, -brownout, and -brownout-window must be non-negative")
		}
		return guide.NewAdmissionController(admission.ControllerConfig{
			Capacity:       *sweepLimit,
			MaxQueue:       *maxQueue,
			BrownoutTarget: *brownout,
			BrownoutWindow: *brWindow,
			Rate:           *rate,
			Burst:          *rateBurst,
		}), nil
	}
}

// Hardened http.Server limits: without them a client that trickles header
// bytes (slow loris) or never finishes a body pins a connection forever, and
// idle keep-alives accumulate across deploy cycles. Request bodies are
// additionally capped at maxRequestBytes via http.MaxBytesReader, answered
// with a structured 413.
const (
	serverReadHeaderTimeout = 5 * time.Second
	serverReadTimeout       = 30 * time.Second
	serverIdleTimeout       = 120 * time.Second
	maxRequestBytes         = 1 << 20
)

// hardenedServer builds the http.Server shared by serve and proxy with the
// slow-client limits above. No WriteTimeout: cold sweeps legitimately run
// long, and the drain timeout already bounds shutdown.
func hardenedServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: serverReadHeaderTimeout,
		ReadTimeout:       serverReadTimeout,
		IdleTimeout:       serverIdleTimeout,
	}
}

// saveWarmSetOnDrain is the drain hook runServe installs: persist the warm
// set after in-flight requests finish. A save failure names the path and
// becomes the process exit status — losing the warm set silently would turn
// the next boot's first burst into unexplained cold-sweep latency.
func saveWarmSetOnDrain(router *guide.Router, path string) func() error {
	return func() error {
		if path == "" {
			return nil
		}
		if err := router.SaveWarmSet(path, 0); err != nil {
			return fmt.Errorf("warm set %s not saved on drain: %w", path, err)
		}
		fmt.Printf("Warm set saved to %s\n", path)
		return nil
	}
}

// serveUntilShutdown runs the server until it fails or ctx is cancelled
// (SIGINT/SIGTERM in production). On cancellation it stops accepting new
// connections, lets in-flight requests — including long cold sweeps — finish
// within the drain timeout via http.Server.Shutdown, then runs onDrained
// (warm-set persistence). A clean drain returns nil; a drain-hook failure is
// the return value (and thus the exit status) when shutdown itself
// succeeded, so a lost warm set is never silent. ln, when non-nil, supplies
// the listener (tests bind port 0 to learn the address); nil uses srv.Addr.
func serveUntilShutdown(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration, onDrained func() error) error {
	errCh := make(chan error, 1)
	go func() {
		if ln != nil {
			errCh <- srv.Serve(ln)
			return
		}
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		return err // bind failure or other serve error; nothing to drain
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	var drainErr error
	if onDrained != nil {
		if drainErr = onDrained(); drainErr != nil {
			fmt.Fprintf(os.Stderr, "error: drain: %v\n", drainErr)
		}
	}
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return drainErr
}

// Request/response schema of the serve endpoints. All bodies are JSON. The
// machine field routes a query to its fleet shard; it may be omitted when
// the fleet serves exactly one machine (the pre-fleet single-advisor wire
// format keeps working unchanged).
type recommendRequest struct {
	Machine   string `json:"machine,omitempty"`
	O         int    `json:"o"`
	V         int    `json:"v"`
	Objective string `json:"objective"` // "stq" or "bq"
}

type recommendResponse struct {
	Machine     string  `json:"machine"`
	O           int     `json:"o"`
	V           int     `json:"v"`
	Objective   string  `json:"objective"`
	Nodes       int     `json:"nodes"`
	Tile        int     `json:"tile"`
	PredSeconds float64 `json:"pred_seconds"`
	PredValue   float64 `json:"pred_value"` // seconds (STQ) or node-hours (BQ)

	// Degraded marks a brownout-mode stale answer: served from an expired
	// cache entry instead of a fresh sweep. Mirrored in the
	// X-Parcost-Degraded response header.
	Degraded bool `json:"degraded,omitempty"`
}

type predictRequest struct {
	Machine string `json:"machine,omitempty"`
	O       int    `json:"o"`
	V       int    `json:"v"`
	Nodes   int    `json:"nodes"`
	Tile    int    `json:"tile"`
}

type predictResponse struct {
	Machine       string  `json:"machine"`
	PredSeconds   float64 `json:"pred_seconds"`
	PredNodeHours float64 `json:"pred_node_hours"`
}

type batchRequest struct {
	Queries []recommendRequest `json:"queries"`
}

type batchEntry struct {
	Result *recommendResponse `json:"result,omitempty"`
	Error  string             `json:"error,omitempty"`

	// Shed entries carry the machine-readable refusal reason and, when the
	// server can estimate one, a retry hint in seconds — the batch envelope
	// is 200, so per-entry sheds surface here instead of in a status code.
	Reason     string `json:"reason,omitempty"`
	RetryAfter int    `json:"retry_after,omitempty"`
}

type batchResponse struct {
	Results []batchEntry `json:"results"`
}

// observeRequest reports a configuration that actually ran and how long an
// iteration took, feeding the retrain daemon's drift monitors.
type observeRequest struct {
	Machine string  `json:"machine,omitempty"`
	O       int     `json:"o"`
	V       int     `json:"v"`
	Nodes   int     `json:"nodes"`
	Tile    int     `json:"tile"`
	Seconds float64 `json:"seconds"`
}

type errorResponse struct {
	Error string `json:"error"`

	// Set on overload sheds: the machine-readable refusal reason
	// (queue_full, deadline_infeasible, brownout, rate_limited) and the
	// Retry-After hint in seconds, mirroring the Retry-After header.
	Reason     string `json:"reason,omitempty"`
	RetryAfter int    `json:"retry_after,omitempty"`
}

// decodeJSON reads a size-capped JSON request body into dst, answering a
// structured 413 when the body exceeds maxRequestBytes and a structured 400
// when it is malformed. Returns false when a response has been written.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
				Error: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed JSON body: " + err.Error()})
		return false
	}
	return true
}

// Overload-control request headers. X-Parcost-Client keys the per-client
// rate limiter; X-Parcost-Deadline-Ms propagates the caller's remaining
// time budget into admission, so a sweep that cannot finish in time is
// refused up front instead of computed for nobody. X-Parcost-Degraded marks
// brownout-mode stale answers on the way out.
const (
	clientHeader   = "X-Parcost-Client"
	deadlineHeader = "X-Parcost-Deadline-Ms"
	degradedHeader = "X-Parcost-Degraded"
)

// clientKey identifies the caller for rate limiting: the X-Parcost-Client
// header when present, else the connection's remote host (so an anonymous
// greedy client is still one bucket, not a limiter bypass).
func clientKey(r *http.Request) string {
	if c := r.Header.Get(clientHeader); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// requestContext derives the handler context from the caller's deadline
// header: a positive X-Parcost-Deadline-Ms bounds the request's context,
// which admission then judges sweeps against. An unparseable or
// non-positive value is a client error.
func requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	h := r.Header.Get(deadlineHeader)
	if h == "" {
		return r.Context(), func() {}, nil
	}
	ms, err := strconv.Atoi(h)
	if err != nil || ms <= 0 {
		return nil, nil, fmt.Errorf("%s must be a positive integer of milliseconds (got %q)", deadlineHeader, h)
	}
	ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
	return ctx, cancel, nil
}

// writeShed maps an admission refusal onto the wire: 429 for rate limiting,
// 503 for queue-full/deadline/brownout sheds, each with a Retry-After
// header and a structured body naming the reason. Returns false when err is
// not a shed (the caller handles it as a plain error). A caller that
// disconnected gets nothing written — there is nobody to read it.
func writeShed(w http.ResponseWriter, r *http.Request, err error) bool {
	var shed *admission.ShedError
	if !errors.As(err, &shed) {
		return false
	}
	if shed.Reason == admission.ReasonAbandoned {
		// The request's context ended while it was queued. If the caller
		// hung up, any body is unreadable; if its deadline header expired,
		// the answer is already too late. Either way: drop, don't compute.
		if r.Context().Err() == nil {
			writeRetryable(w, http.StatusServiceUnavailable, shed)
		}
		return true
	}
	status := http.StatusServiceUnavailable
	if shed.Reason == admission.ReasonRateLimited {
		status = http.StatusTooManyRequests
	}
	writeRetryable(w, status, shed)
	return true
}

// writeRetryable answers one shed with its Retry-After header and body.
func writeRetryable(w http.ResponseWriter, status int, shed *admission.ShedError) {
	secs := shed.RetryAfterSeconds()
	if secs > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, errorResponse{
		Error:      shed.Error(),
		Reason:     string(shed.Reason),
		RetryAfter: secs,
	})
}

// newServeHandler builds the HTTP API over a guide.Router. Split from
// runServe so tests drive the exact handler the daemon mounts. obs, when
// non-nil, receives /v1/observe reports (the retrain daemon's drift
// monitors); a plain `parcost serve` passes nil and the endpoint answers
// 501 so clients learn observation ingest is not wired up (501, not 503:
// the condition is configuration, not a transient fault, so the proxy
// relays it instead of failing over).
//
// Overload control rides the router's admission controller: the per-client
// rate limiter fronts every query endpoint, request deadlines propagate
// from X-Parcost-Deadline-Ms into admission, and sheds answer 429/503 with
// Retry-After (see writeShed).
func newServeHandler(router *guide.Router, obs guide.Observer) http.Handler {
	mux := http.NewServeMux()
	metrics := guide.NewMetrics()
	adm := router.Admission()

	// rateLimited fronts the query endpoints with the per-client token
	// buckets. healthz/metrics stay unlimited: shedding observability while
	// overloaded would blind the operator exactly when they need to see.
	rateLimited := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if ok, retry := adm.Limiter.Allow(clientKey(r)); !ok {
				writeRetryable(w, http.StatusTooManyRequests, &admission.ShedError{
					Reason: admission.ReasonRateLimited, RetryAfter: retry,
				})
				return
			}
			h(w, r)
		}
	}

	// Prometheus scrape endpoint. Deliberately NOT instrumented: scraping
	// every 15s would swamp the latency histograms it exports.
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", guide.PrometheusContentType)
		guide.WritePrometheus(w, metrics.Snapshot(), router.ShardStats())
		admission.WritePrometheus(w, adm.Health())
		// The retrain daemon's observer carries its own metric families
		// (retrain cycles, promotions, rollbacks, gate failures).
		if pw, ok := obs.(interface{ WritePrometheus(io.Writer) }); ok {
			pw.WritePrometheus(w)
		}
	})

	mux.HandleFunc("POST /v1/observe", metrics.Instrument("observe", rateLimited(func(w http.ResponseWriter, r *http.Request) {
		if adm.BrownoutActive() {
			// Observation ingest triggers drift checks and possible refits —
			// precisely the optional work a browned-out server must refuse.
			writeRetryable(w, http.StatusServiceUnavailable, adm.ShedBrownout())
			return
		}
		var req observeRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		if obs == nil {
			writeJSON(w, http.StatusNotImplemented, errorResponse{
				Error: "observation ingest requires the retrain daemon (run `parcost retrain`)"})
			return
		}
		// Resolve the machine like every other endpoint, so a defaulted
		// single-shard fleet works and unknown machines fail loudly.
		machineName, _, err := router.ResolveShard(req.Machine)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		o := guide.Observation{
			Machine: machineName,
			Config:  dataset.Config{O: req.O, V: req.V, Nodes: req.Nodes, TileSize: req.Tile},
			Seconds: req.Seconds,
		}
		if err := o.Validate(); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		if err := obs.Observe(o); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "accepted", "machine": machineName})
	})))

	mux.HandleFunc("GET /v1/healthz", metrics.Instrument("healthz", func(w http.ResponseWriter, r *http.Request) {
		status := "ok"
		if adm.BrownoutActive() {
			status = "brownout"
		}
		health := adm.Health()
		resp := guide.HealthReport{
			Status:    status,
			Aggregate: guide.HealthFromStats(router.AggregateStats()),
			Latency:   metrics.Snapshot(),
			Admission: &health,
		}
		stats := router.ShardStats()
		for _, name := range router.Machines() {
			svc, err := router.Shard(name)
			if err != nil {
				continue // removed between listing and resolve
			}
			resp.Machines = append(resp.Machines, guide.ShardHealth{
				Machine:     name,
				Model:       svc.Advisor().Model.Name(),
				CacheHealth: guide.HealthFromStats(stats[name]),
			})
		}
		writeJSON(w, http.StatusOK, resp)
	}))

	// Warm-set handoff endpoints: GET exports the fleet's hottest keys in
	// the same versioned format SaveWarmSet writes; POST pre-sweeps an
	// exported set through this fleet. Together they let a proxy drain a
	// backend into its replacement without a shared filesystem.
	mux.HandleFunc("GET /v1/warmset", metrics.Instrument("warmset", func(w http.ResponseWriter, r *http.Request) {
		data, err := guide.EncodeWarmSet(router.ExportWarmSet(0))
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	}))

	mux.HandleFunc("POST /v1/warmset", metrics.Instrument("warmset", func(w http.ResponseWriter, r *http.Request) {
		var raw json.RawMessage
		if !decodeJSON(w, r, &raw) {
			return
		}
		ws, err := guide.DecodeWarmSet(raw)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		warmed, err := router.ImportWarmSet(ws)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"warmed": warmed})
	}))

	mux.HandleFunc("POST /v1/recommend", metrics.Instrument("recommend", rateLimited(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel, err := requestContext(r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		defer cancel()
		var req recommendRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := recommendOne(ctx, router, req)
		if err != nil {
			if writeShed(w, r, err) {
				return
			}
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		if resp.Degraded {
			w.Header().Set(degradedHeader, "stale")
		}
		writeJSON(w, http.StatusOK, resp)
	})))

	mux.HandleFunc("POST /v1/batch", metrics.Instrument("batch", rateLimited(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel, err := requestContext(r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		defer cancel()
		var req batchRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		if len(req.Queries) == 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "batch requires at least one query"})
			return
		}
		// Validate every query up front so a malformed entry rejects the
		// batch before any sweeps run. Machine resolution stays per-entry:
		// a batch may mix machines, and an unknown one fails only its entry.
		queries := make([]guide.RoutedQuery, len(req.Queries))
		for i, q := range req.Queries {
			obj, err := parseObjective(q.Objective)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("query %d: %v", i, err)})
				return
			}
			if q.O <= 0 || q.V <= 0 {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("query %d: o and v must be positive (got o=%d v=%d)", i, q.O, q.V)})
				return
			}
			queries[i] = guide.RoutedQuery{
				Machine: q.Machine,
				Query:   guide.Query{Problem: dataset.Problem{O: q.O, V: q.V}, Objective: obj},
			}
		}
		results := router.RecommendBatchCtx(ctx, queries)
		resp := batchResponse{Results: make([]batchEntry, len(results))}
		for i, res := range results {
			if res.Err != nil {
				entry := batchEntry{Error: res.Err.Error()}
				var shed *admission.ShedError
				if errors.As(res.Err, &shed) {
					entry.Reason = string(shed.Reason)
					entry.RetryAfter = shed.RetryAfterSeconds()
				}
				resp.Results[i] = entry
				continue
			}
			rr := toRecommendResponse(req.Queries[i], res.Rec)
			rr.Machine = res.Machine // resolved shard name, not the (possibly empty) request field
			rr.Degraded = res.Stale
			resp.Results[i] = batchEntry{Result: &rr}
		}
		writeJSON(w, http.StatusOK, resp)
	})))

	mux.HandleFunc("POST /v1/predict", metrics.Instrument("predict", rateLimited(func(w http.ResponseWriter, r *http.Request) {
		var req predictRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		if req.O <= 0 || req.V <= 0 || req.Nodes <= 0 || req.Tile <= 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("o, v, nodes, and tile must all be positive (got o=%d v=%d nodes=%d tile=%d)", req.O, req.V, req.Nodes, req.Tile)})
			return
		}
		machineName, svc, err := router.ResolveShard(req.Machine)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		cfg := dataset.Config{O: req.O, V: req.V, Nodes: req.Nodes, TileSize: req.Tile}
		secs := svc.PredictTime(cfg)
		writeJSON(w, http.StatusOK, predictResponse{
			Machine:       machineName,
			PredSeconds:   secs,
			PredNodeHours: float64(cfg.Nodes) * secs / 3600,
		})
	})))

	return mux
}

// recommendOne validates and answers a single recommend request under the
// caller's context (deadline and disconnect propagate into admission). The
// response echoes the machine name resolved atomically with the shard
// lookup, so a defaulted query reports the shard that actually answered
// even if the fleet composition changes mid-request.
func recommendOne(ctx context.Context, router *guide.Router, req recommendRequest) (recommendResponse, error) {
	obj, err := parseObjective(req.Objective)
	if err != nil {
		return recommendResponse{}, err
	}
	if req.O <= 0 || req.V <= 0 {
		return recommendResponse{}, fmt.Errorf("o and v must be positive (got o=%d v=%d)", req.O, req.V)
	}
	machineName, svc, err := router.ResolveShard(req.Machine)
	if err != nil {
		return recommendResponse{}, err
	}
	rec, stale, err := svc.RecommendCtx(ctx, dataset.Problem{O: req.O, V: req.V}, obj)
	if err != nil {
		return recommendResponse{}, err
	}
	out := toRecommendResponse(req, rec)
	out.Machine = machineName
	out.Degraded = stale
	return out, nil
}

func toRecommendResponse(req recommendRequest, rec guide.Recommendation) recommendResponse {
	return recommendResponse{
		Machine: req.Machine,
		O:       req.O, V: req.V, Objective: rec.Objective.String(),
		Nodes: rec.Config.Nodes, Tile: rec.Config.TileSize,
		PredSeconds: rec.PredTime, PredValue: rec.PredValue,
	}
}

// parseObjective maps the wire objective name to a guide.Objective.
func parseObjective(s string) (guide.Objective, error) {
	switch s {
	case "stq", "STQ":
		return guide.ShortestTime, nil
	case "bq", "BQ":
		return guide.Budget, nil
	default:
		return 0, fmt.Errorf("objective must be \"stq\" or \"bq\" (got %q)", s)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
