package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"time"

	"parcost/internal/dataset"
	"parcost/internal/guide"
	"parcost/internal/machine"
)

// runServe loads a trained advisor artifact and serves STQ/BQ/predict
// queries over HTTP, backed by the concurrent guide.Service (bounded sweep
// cache, coalesced concurrent queries).
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		model = fs.String("model", "", "trained advisor artifact (required; from `parcost train`)")
		addr  = fs.String("addr", ":8080", "listen address")
		cache = fs.Int("cache", guide.DefaultCacheSize, "sweep-cache entries (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *model == "" {
		return fmt.Errorf("-model is required")
	}
	adv, machineName, err := guide.LoadAdvisor(*model)
	if err != nil {
		return err
	}
	spec, err := machine.ByName(machineName)
	if err != nil {
		return fmt.Errorf("artifact machine: %w", err)
	}
	svc, err := guide.NewService(adv,
		guide.WithOracle(guide.NewSimOracle(spec)),
		guide.WithCacheSize(*cache))
	if err != nil {
		return err
	}
	fmt.Printf("Serving %s advisor for %s on %s\n", adv.Model.Name(), spec.Name, *addr)
	return http.ListenAndServe(*addr, newServeHandler(svc, adv.Model.Name(), spec.Name))
}

// Request/response schema of the serve endpoints. All bodies are JSON.
type recommendRequest struct {
	O         int    `json:"o"`
	V         int    `json:"v"`
	Objective string `json:"objective"` // "stq" or "bq"
}

type recommendResponse struct {
	O           int     `json:"o"`
	V           int     `json:"v"`
	Objective   string  `json:"objective"`
	Nodes       int     `json:"nodes"`
	Tile        int     `json:"tile"`
	PredSeconds float64 `json:"pred_seconds"`
	PredValue   float64 `json:"pred_value"` // seconds (STQ) or node-hours (BQ)
}

type predictRequest struct {
	O     int `json:"o"`
	V     int `json:"v"`
	Nodes int `json:"nodes"`
	Tile  int `json:"tile"`
}

type predictResponse struct {
	PredSeconds   float64 `json:"pred_seconds"`
	PredNodeHours float64 `json:"pred_node_hours"`
}

type batchRequest struct {
	Queries []recommendRequest `json:"queries"`
}

type batchEntry struct {
	Result *recommendResponse `json:"result,omitempty"`
	Error  string             `json:"error,omitempty"`
}

type batchResponse struct {
	Results []batchEntry `json:"results"`
}

type healthResponse struct {
	Status  string `json:"status"`
	Model   string `json:"model"`
	Machine string `json:"machine"`

	// Service observability: sweep-cache behavior and per-sweep wall time.
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	CacheSize   int     `json:"cache_size"`
	Sweeps      uint64  `json:"sweeps"`
	SweepMinMs  float64 `json:"sweep_min_ms"`
	SweepMeanMs float64 `json:"sweep_mean_ms"`
	SweepMaxMs  float64 `json:"sweep_max_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// newServeHandler builds the HTTP API over a guide.Service. Split from
// runServe so tests drive the exact handler the daemon mounts.
func newServeHandler(svc *guide.Service, modelName, machineName string) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := svc.CacheStats()
		writeJSON(w, http.StatusOK, healthResponse{
			Status: "ok", Model: modelName, Machine: machineName,
			CacheHits: st.Hits, CacheMisses: st.Misses, CacheSize: st.Size,
			Sweeps:      st.SweepCount,
			SweepMinMs:  float64(st.SweepMin) / float64(time.Millisecond),
			SweepMeanMs: float64(st.SweepMean) / float64(time.Millisecond),
			SweepMaxMs:  float64(st.SweepMax) / float64(time.Millisecond),
		})
	})

	mux.HandleFunc("POST /v1/recommend", func(w http.ResponseWriter, r *http.Request) {
		var req recommendRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed JSON body: " + err.Error()})
			return
		}
		resp, err := recommendOne(svc, req)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req batchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed JSON body: " + err.Error()})
			return
		}
		if len(req.Queries) == 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "batch requires at least one query"})
			return
		}
		// Validate every query up front so a malformed entry rejects the
		// batch before any sweeps run.
		queries := make([]guide.Query, len(req.Queries))
		for i, q := range req.Queries {
			obj, err := parseObjective(q.Objective)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("query %d: %v", i, err)})
				return
			}
			if q.O <= 0 || q.V <= 0 {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("query %d: o and v must be positive (got o=%d v=%d)", i, q.O, q.V)})
				return
			}
			queries[i] = guide.Query{Problem: dataset.Problem{O: q.O, V: q.V}, Objective: obj}
		}
		results := svc.RecommendBatch(queries)
		resp := batchResponse{Results: make([]batchEntry, len(results))}
		for i, res := range results {
			if res.Err != nil {
				resp.Results[i] = batchEntry{Error: res.Err.Error()}
				continue
			}
			rr := toRecommendResponse(req.Queries[i], res.Rec)
			resp.Results[i] = batchEntry{Result: &rr}
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		var req predictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed JSON body: " + err.Error()})
			return
		}
		if req.O <= 0 || req.V <= 0 || req.Nodes <= 0 || req.Tile <= 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("o, v, nodes, and tile must all be positive (got o=%d v=%d nodes=%d tile=%d)", req.O, req.V, req.Nodes, req.Tile)})
			return
		}
		cfg := dataset.Config{O: req.O, V: req.V, Nodes: req.Nodes, TileSize: req.Tile}
		secs := svc.PredictTime(cfg)
		writeJSON(w, http.StatusOK, predictResponse{
			PredSeconds:   secs,
			PredNodeHours: float64(cfg.Nodes) * secs / 3600,
		})
	})

	return mux
}

// recommendOne validates and answers a single recommend request.
func recommendOne(svc *guide.Service, req recommendRequest) (recommendResponse, error) {
	obj, err := parseObjective(req.Objective)
	if err != nil {
		return recommendResponse{}, err
	}
	if req.O <= 0 || req.V <= 0 {
		return recommendResponse{}, fmt.Errorf("o and v must be positive (got o=%d v=%d)", req.O, req.V)
	}
	rec, err := svc.Recommend(dataset.Problem{O: req.O, V: req.V}, obj)
	if err != nil {
		return recommendResponse{}, err
	}
	return toRecommendResponse(req, rec), nil
}

func toRecommendResponse(req recommendRequest, rec guide.Recommendation) recommendResponse {
	return recommendResponse{
		O: req.O, V: req.V, Objective: rec.Objective.String(),
		Nodes: rec.Config.Nodes, Tile: rec.Config.TileSize,
		PredSeconds: rec.PredTime, PredValue: rec.PredValue,
	}
}

// parseObjective maps the wire objective name to a guide.Objective.
func parseObjective(s string) (guide.Objective, error) {
	switch s {
	case "stq", "STQ":
		return guide.ShortestTime, nil
	case "bq", "BQ":
		return guide.Budget, nil
	default:
		return 0, fmt.Errorf("objective must be \"stq\" or \"bq\" (got %q)", s)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
