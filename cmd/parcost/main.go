// Command parcost is the user-facing CLI of the library. It trains a
// runtime-prediction model from a dataset and answers the paper's two
// questions for a given problem size:
//
//	parcost stq    -data aurora.csv -machine aurora -o 146 -v 1096
//	parcost bq     -data aurora.csv -machine aurora -o 146 -v 1096
//	parcost predict -data aurora.csv -o 146 -v 1096 -nodes 300 -tile 80
//	parcost eval   -data aurora.csv -machine aurora
//
// Training and query time can be split: `parcost train` fits once and
// writes a versioned advisor artifact, which the query commands load with
// -model and `parcost serve` exposes as a concurrent HTTP JSON service:
//
//	parcost train -data aurora.csv -machine aurora -out aurora.model.json
//	parcost stq   -model aurora.model.json -o 146 -v 1096
//	parcost serve -model aurora.model.json -addr :8080
//
// A whole fleet can train in one run and serve from one process — queries
// route by the "machine" field of the request body:
//
//	parcost train -machines aurora,frontier -out fleet.json
//	parcost serve -model fleet.json -addr :8080 -warmset warm.json
//
// If -data is omitted, the dataset is generated on the fly by the simulator
// for the chosen machine.
package main

import (
	"fmt"
	"os"

	"parcost/internal/ccsd"
	"parcost/internal/dataset"
	"parcost/internal/guide"
	"parcost/internal/machine"
	"parcost/internal/ml"
	"parcost/internal/ml/ensemble"

	// Register every model family's artifact kind so any advisor artifact
	// decodes, not just the GB models this CLI trains.
	_ "parcost/internal/ml/kernel"
	_ "parcost/internal/ml/linmodel"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "stq":
		err = runQuery(args, guide.ShortestTime)
	case "bq":
		err = runQuery(args, guide.Budget)
	case "predict":
		err = runPredict(args)
	case "eval":
		err = runEval(args)
	case "train":
		err = runTrain(args)
	case "serve":
		err = runServe(args)
	case "retrain":
		err = runRetrain(args)
	case "proxy":
		err = runProxy(args)
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `parcost — CCSD resource estimation

Commands:
  stq      find (nodes, tile) for the shortest execution time
  bq       find (nodes, tile) minimizing node-hours
  predict  predict the iteration time of a specific configuration
  eval     evaluate model accuracy on a held-out split
  train    fit the model once and write an artifact (-out); -machines a,b
           trains a whole fleet into one bundle
  serve    serve stq/bq/predict over HTTP from an artifact or fleet bundle
           (-model -addr; -warmset pre-sweeps hot keys at startup and saves
           them on graceful shutdown)
  retrain  serve a fleet with closed-loop retraining: drift-watched
           observation ingest (/v1/observe), validation-gated hot-swap
           promotions, automatic rollback (-model -state; crash-safe
           journals resume interrupted cycles)
  proxy    front N serve processes with one fault-tolerant endpoint
           (-backends host1:8081,host2:8082 -hedge-after 95p -retries 2
           -breaker-window 10s; same /v1 API, plus /v1/admin/drain)

Common flags:
  -data <csv>      dataset CSV (default: simulate for -machine)
  -machine <name>  aurora or frontier (default aurora)
  -machines <a,b>  train: comma-separated machine list (fleet bundle)
  -model <file>    advisor artifact; query without refitting (stq/bq/predict)
  -o, -v           problem size (occupied / virtual orbitals)
  -nodes, -tile    configuration (predict only)
  -trees, -depth   GB hyper-parameters (default 750, 10)
  -seed            RNG seed
`)
}

// defaultGenSize is the simulated-dataset size when -data is omitted,
// matching the paper's collected-measurement count.
const defaultGenSize = 2300

// loadOrGenerate returns the dataset and machine spec for the given flags.
// size bounds the simulated dataset when no CSV is given (defaultGenSize for
// the query commands; `train -gensize` overrides it).
func loadOrGenerate(data, machineName string, seed uint64, size int) (*dataset.Dataset, machine.Spec, error) {
	spec, err := machine.ByName(machineName)
	if err != nil {
		return nil, machine.Spec{}, err
	}
	if data != "" {
		d, err := dataset.LoadCSV(machineName, data)
		return d, spec, err
	}
	d := ccsd.Generate(spec, ccsd.GenConfig{TargetSize: size, Noise: true, Seed: seed})
	return d, spec, nil
}

func buildGB(trees, depth int, seed uint64) ml.Regressor {
	return ensemble.NewGradientBoosting(trees, 0.1, treeParams(depth), seed)
}
