package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"parcost/internal/active"
	"parcost/internal/dataset"
	"parcost/internal/guide"
	"parcost/internal/machine"
	"parcost/internal/ml"
	"parcost/internal/retrain"
)

// runRetrain serves a fleet like `parcost serve` and closes the loop around
// it: per shard, a retrain.Controller watches /v1/observe reports for drift
// against the serving model, acquires fresh measurements (simulated here by
// the machine's oracle), fits and validation-gates a candidate, and
// hot-swaps it into the router — journaling every step so a killed daemon
// resumes mid-cycle without repeating measurements.
func runRetrain(args []string) error {
	fs := flag.NewFlagSet("retrain", flag.ContinueOnError)
	var (
		model    = fs.String("model", "", "trained artifact: fleet bundle or single advisor (required)")
		addr     = fs.String("addr", ":8080", "listen address")
		state    = fs.String("state", "retrain-state", "directory for per-machine journals and promoted artifacts")
		strategy = fs.String("strategy", "rs", "acquisition strategy: rs, us, or qbc")
		batch    = fs.Int("batch", 16, "measurements acquired per retrain cycle")
		window   = fs.Int("drift-window", 32, "observations in the drift window")
		thresh   = fs.Float64("drift-threshold", 0.25, "windowed mean relative error that arms a retrain")
		margin   = fs.Float64("gate-margin", 0.05, "relative held-out RMSE improvement a candidate must show")
		rollback = fs.Int("rollback-window", 16, "post-promotion observations watched before a promotion is final")
		trees    = fs.Int("trees", 750, "candidate GB trees")
		depth    = fs.Int("depth", 10, "candidate GB max depth")
		seed     = fs.Uint64("seed", 1, "RNG seed (acquisition, backoff jitter, base data)")
		drain    = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout on SIGINT/SIGTERM")
	)
	admCfg := admissionFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *model == "" {
		return fmt.Errorf("-model is required")
	}
	kind, err := parseStrategy(*strategy)
	if err != nil {
		return err
	}
	if *batch <= 0 || *window <= 0 || *rollback <= 0 {
		return fmt.Errorf("-batch, -drift-window, and -rollback-window must be positive")
	}
	if *thresh <= 0 || *margin <= 0 {
		return fmt.Errorf("-drift-threshold and -gate-margin must be positive")
	}
	if *trees <= 0 || *depth <= 0 {
		return fmt.Errorf("-trees and -depth must be positive")
	}
	if *drain <= 0 {
		return fmt.Errorf("-drain must be positive")
	}
	if err := os.MkdirAll(*state, 0o755); err != nil {
		return fmt.Errorf("state directory: %w", err)
	}

	adm, err := admCfg()
	if err != nil {
		return err
	}

	entries, _, err := guide.LoadFleet(*model)
	if err != nil {
		return err
	}
	// The retrain daemon serves the same /v1 surface as `parcost serve`, so
	// it takes the same overload controls: shared sweep admission, per-client
	// rate limits, and brownout shedding.
	router := guide.NewRouter(guide.WithAdmission(adm))
	fleet := retrain.NewFleet()
	for _, e := range entries {
		spec, err := machine.ByName(e.Machine)
		if err != nil {
			return fmt.Errorf("artifact machine: %w", err)
		}
		oracle := guide.NewSimOracle(spec)
		if err := router.AddShard(e.Machine, e.Advisor, guide.WithOracle(oracle)); err != nil {
			return err
		}
		// Base rows: the simulated dataset the bundle's advisor family
		// trains on, so a candidate always retains pre-drift coverage.
		d, _, err := loadOrGenerate("", e.Machine, *seed, defaultGenSize)
		if err != nil {
			return err
		}
		// Acquisition pool: every paper problem swept over the advisor's
		// own candidate grid.
		var pool []dataset.Config
		for _, p := range dataset.PaperProblems() {
			pool = append(pool, e.Advisor.Grid.Configs(p)...)
		}
		ctrl, err := retrain.New(retrain.Config{
			Machine:     e.Machine,
			Router:      router,
			Measurer:    retrain.SimMeasurer{Oracle: oracle},
			Pool:        pool,
			BaseX:       d.Features(),
			BaseY:       d.Targets(),
			BaseAdvisor: e.Advisor,
			Fit: func(x [][]float64, y []float64) (ml.Regressor, error) {
				m := buildGB(*trees, *depth, *seed)
				if err := m.Fit(x, y); err != nil {
					return nil, err
				}
				return m, nil
			},
			JournalPath: filepath.Join(*state, e.Machine+".journal"),
			ArtifactDir: *state,
			Strategy:    kind,

			DriftWindow: *window, DriftThreshold: *thresh,
			AcquireBatch:   *batch,
			GateMargin:     *margin,
			RollbackWindow: *rollback,
			Seed:           *seed,
		})
		if err != nil {
			return err
		}
		fleet.Add(e.Machine, ctrl)
		fmt.Printf("Shard %s: %s advisor under retrain watch (journal %s)\n",
			e.Machine, e.Advisor.Model.Name(), filepath.Join(*state, e.Machine+".journal"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go fleet.Run(ctx)

	srv := hardenedServer(*addr, newServeHandler(router, fleet))
	fmt.Printf("Serving fleet %v on %s with closed-loop retraining\n", router.Machines(), *addr)
	return serveUntilShutdown(ctx, srv, nil, *drain, func() error {
		stop() // ensure the controllers' Run loops exit before journals close
		return fleet.Close()
	})
}

func parseStrategy(s string) (active.StrategyKind, error) {
	switch s {
	case "rs":
		return active.RandomSampling, nil
	case "us":
		return active.UncertaintySampling, nil
	case "qbc":
		return active.QueryByCommittee, nil
	default:
		return 0, fmt.Errorf("-strategy must be rs, us, or qbc (got %q)", s)
	}
}
