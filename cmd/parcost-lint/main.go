// Command parcost-lint is the repo's determinism & crash-safety multichecker:
// it runs every internal/lint analyzer (detrand, walltime, maprange, syncerr,
// gomaxprocsdep) over the named package patterns and exits non-zero when any
// invariant is violated. CI runs it as a blocking step over ./...; run it
// locally the same way:
//
//	go run ./cmd/parcost-lint ./...
//
// or via scripts/lint.sh, which matches CI exactly. See the README's
// "Determinism contract" section for what each analyzer enforces and how to
// bless a call site.
package main

import (
	"flag"
	"fmt"
	"os"

	"parcost/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: parcost-lint [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings := lint.RunAnalyzers(pkgs, lint.All())
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "parcost-lint: %d invariant violation(s)\n", len(findings))
		os.Exit(1)
	}
}
