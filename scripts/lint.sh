#!/usr/bin/env bash
# Runs the exact lint gate CI runs: go vet, then the parcost-lint
# determinism & crash-safety suite over the whole module. Exits non-zero on
# any finding, so it can sit in a pre-push hook verbatim.
#
# Usage:
#   scripts/lint.sh [packages...]    default: ./...
set -euo pipefail
cd "$(dirname "$0")/.."

patterns=("$@")
if [[ ${#patterns[@]} -eq 0 ]]; then
  patterns=(./...)
fi

go vet "${patterns[@]}"
go run ./cmd/parcost-lint "${patterns[@]}"
echo "lint: clean"
