#!/usr/bin/env bash
# Runs the headline paper-table benchmarks once and records the results as
# BENCH_<date>.json in the repo root, building the performance trajectory
# across PRs. Pass a custom -bench pattern as $1 to override the default set.
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${1:-BenchmarkTable2_GBTrainPredict|BenchmarkFigure1_AuroraModels|BenchmarkAblation_SplitterEngine|BenchmarkAblation_KernelGram}"
out="BENCH_$(date +%Y%m%d).json"

raw=$(go test -run '^$' -bench "$pattern" -benchtime=1x -benchmem .)
echo "$raw"

{
  echo '{'
  echo "  \"date\": \"$(date -Iseconds)\","
  echo "  \"go\": \"$(go version | awk '{print $3}')\","
  echo '  "results": ['
  echo "$raw" | awk '
    /^Benchmark/ {
      if (seen) printf ",\n"
      seen = 1
      printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", $1, $3, $5, $7
    }
    END { if (seen) printf "\n" }'
  echo '  ]'
  echo '}'
} > "$out"
echo "wrote $out"
