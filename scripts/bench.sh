#!/usr/bin/env bash
# Runs the headline paper-table benchmarks once and records the results as
# BENCH_<date>.json in the repo root, building the performance trajectory
# across PRs.
#
# Usage:
#   scripts/bench.sh [pattern]            run + record
#   scripts/bench.sh compare [-fail-above <ratio>] [pattern]
#                                         run + record + diff against the
#                                         latest prior BENCH_*.json, printing
#                                         per-benchmark speedup ratios
#
# With -fail-above, compare exits non-zero when any benchmark's ns/op grew
# past <ratio> × its prior value (e.g. -fail-above 1.5 fails on a >1.5×
# slowdown), so a gate can fail on regressions instead of only printing
# ratios. Ratios are only meaningful between runs on the SAME hardware:
# gate in environments that record their own baseline (a dev box's local
# BENCH trajectory, or CI that measures a baseline in the same job), not
# against snapshots committed from different machines.
#
# A custom -bench pattern overrides the default set. Existing BENCH files are
# never clobbered: a same-day rerun writes BENCH_<date>_N.json, which sorts
# after the original so "latest prior" stays well-defined.
set -euo pipefail
cd "$(dirname "$0")/.."

compare=0
fail_above=""
if [[ "${1:-}" == "compare" ]]; then
  compare=1
  shift
  if [[ "${1:-}" == "-fail-above" ]]; then
    fail_above="${2:?-fail-above needs a ratio}"
    shift 2
  fi
fi
pattern="${1:-BenchmarkTable2_GBTrainPredict|BenchmarkFigure1_AuroraModels|BenchmarkAblation_SplitterEngine|BenchmarkAblation_HistTree|BenchmarkAblation_KernelGram|BenchmarkAblation_SPDSolve|BenchmarkRouter_MixedFleet|BenchmarkProxy_Overhead|BenchmarkRetrain_HotSwap|BenchmarkOverload_ShedVsServe}"

# Snapshot the latest prior record BEFORE writing the new one (-V so a
# tenth same-day rerun _10 sorts after _9, not before _2).
prev=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1 || true)

out="BENCH_$(date +%Y%m%d).json"
n=2
while [[ -e "$out" ]]; do
  out="BENCH_$(date +%Y%m%d)_$n.json"
  n=$((n + 1))
done

# BenchmarkProxy_Overhead and BenchmarkRetrain_HotSwap live in cmd/parcost,
# BenchmarkOverload_ShedVsServe in internal/admission; the paper tables in
# the root. The $(...) capture would otherwise swallow a compile failure or
# benchmark panic into an empty snapshot, so check the exit status
# explicitly and fail loudly instead of recording garbage.
if ! raw=$(go test -run '^$' -bench "$pattern" -benchtime=1x -benchmem . ./cmd/parcost ./internal/admission 2>&1); then
  echo "$raw"
  echo "bench: go test -bench failed; no snapshot written" >&2
  exit 1
fi
echo "$raw"
if ! grep -q '^Benchmark' <<<"$raw"; then
  echo "bench: no benchmarks matched pattern '$pattern'; no snapshot written" >&2
  exit 1
fi

{
  echo '{'
  echo "  \"date\": \"$(date -Iseconds)\","
  echo "  \"go\": \"$(go version | awk '{print $3}')\","
  echo '  "results": ['
  echo "$raw" | awk '
    /^Benchmark/ {
      if (seen) printf ",\n"
      seen = 1
      sub(/-[0-9]+$/, "", $1)  # drop the -GOMAXPROCS suffix so snapshots from different core counts compare
      printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", $1, $3, $5, $7
    }
    END { if (seen) printf "\n" }'
  echo '  ]'
  echo '}'
} > "$out"
echo "wrote $out"

if [[ "$compare" == 1 ]]; then
  if [[ -z "$prev" ]]; then
    echo "compare: no prior BENCH_*.json to diff against"
    exit 0
  fi
  echo
  echo "compare: $prev -> $out (ratio > 1 is a speedup)"
  # Both files hold one {"name": ..., "ns_per_op": ...} object per line.
  # With a fail-above ratio, benchmarks whose new ns/op exceeds
  # prev × ratio are listed and the script exits 1.
  awk -v fail_above="${fail_above}" '
    function trim(s) { gsub(/[",]/, "", s); return s }
    /"name"/ {
      name = trim($2); ns = trim($4) + 0
      if (FILENAME == ARGV[1]) { prev[name] = ns }
      else if (name in prev && ns > 0) {
        printf "  %-55s %12.0f -> %12.0f ns/op   %5.2fx\n", name, prev[name], ns, prev[name] / ns
        if (fail_above != "" && ns > prev[name] * fail_above) {
          regressed[name] = ns / prev[name]
        }
      } else if (!(name in prev)) {
        printf "  %-55s %28s %12.0f ns/op   (new)\n", name, "", ns
      }
    }
    END {
      bad = 0
      for (name in regressed) {
        if (!bad) printf "\nregressions past %sx:\n", fail_above
        printf "  %-55s %.2fx slower\n", name, regressed[name]
        bad = 1
      }
      exit bad
    }
  ' "$prev" "$out"
fi
