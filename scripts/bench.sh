#!/usr/bin/env bash
# Runs the headline paper-table benchmarks once and records the results as
# BENCH_<date>.json in the repo root, building the performance trajectory
# across PRs.
#
# Usage:
#   scripts/bench.sh [pattern]            run + record
#   scripts/bench.sh compare [pattern]    run + record + diff against the
#                                         latest prior BENCH_*.json, printing
#                                         per-benchmark speedup ratios
#
# A custom -bench pattern overrides the default set. Existing BENCH files are
# never clobbered: a same-day rerun writes BENCH_<date>_N.json, which sorts
# after the original so "latest prior" stays well-defined.
set -euo pipefail
cd "$(dirname "$0")/.."

compare=0
if [[ "${1:-}" == "compare" ]]; then
  compare=1
  shift
fi
pattern="${1:-BenchmarkTable2_GBTrainPredict|BenchmarkFigure1_AuroraModels|BenchmarkAblation_SplitterEngine|BenchmarkAblation_KernelGram|BenchmarkAblation_SPDSolve}"

# Snapshot the latest prior record BEFORE writing the new one (-V so a
# tenth same-day rerun _10 sorts after _9, not before _2).
prev=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1 || true)

out="BENCH_$(date +%Y%m%d).json"
n=2
while [[ -e "$out" ]]; do
  out="BENCH_$(date +%Y%m%d)_$n.json"
  n=$((n + 1))
done

raw=$(go test -run '^$' -bench "$pattern" -benchtime=1x -benchmem .)
echo "$raw"

{
  echo '{'
  echo "  \"date\": \"$(date -Iseconds)\","
  echo "  \"go\": \"$(go version | awk '{print $3}')\","
  echo '  "results": ['
  echo "$raw" | awk '
    /^Benchmark/ {
      if (seen) printf ",\n"
      seen = 1
      sub(/-[0-9]+$/, "", $1)  # drop the -GOMAXPROCS suffix so snapshots from different core counts compare
      printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", $1, $3, $5, $7
    }
    END { if (seen) printf "\n" }'
  echo '  ]'
  echo '}'
} > "$out"
echo "wrote $out"

if [[ "$compare" == 1 ]]; then
  if [[ -z "$prev" ]]; then
    echo "compare: no prior BENCH_*.json to diff against"
    exit 0
  fi
  echo
  echo "compare: $prev -> $out (ratio > 1 is a speedup)"
  # Both files hold one {"name": ..., "ns_per_op": ...} object per line.
  awk '
    function trim(s) { gsub(/[",]/, "", s); return s }
    /"name"/ {
      name = trim($2); ns = trim($4) + 0
      if (FILENAME == ARGV[1]) { prev[name] = ns }
      else if (name in prev && ns > 0) {
        printf "  %-55s %12.0f -> %12.0f ns/op   %5.2fx\n", name, prev[name], ns, prev[name] / ns
      } else if (!(name in prev)) {
        printf "  %-55s %28s %12.0f ns/op   (new)\n", name, "", ns
      }
    }
  ' "$prev" "$out"
fi
